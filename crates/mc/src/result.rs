//! Run results: per-chip samples, empirical summaries with binomial
//! confidence intervals, and control-variate-adjusted estimators.

use statleak_stats::{phi, wilson_interval, BinomialInterval, Histogram, Summary};

/// Normal quantile of the default two-sided 95% confidence level used by
/// the reported intervals.
pub const DEFAULT_CI_Z: f64 = 1.959_963_985;

/// One sampled chip: circuit delay and total leakage current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSample {
    /// Circuit delay (ps) under the sampled parameters.
    pub delay: f64,
    /// Total leakage current (A) under the sampled parameters.
    pub leakage: f64,
}

/// Per-sample linear-surrogate evaluations plus their analytically known
/// moments, recorded when the control-variate layer is enabled.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SurrogateData {
    /// Linearized (SSTA canonical) delay per sample (ps).
    pub delay: Vec<f64>,
    /// Conditional-mean leakage surrogate per sample (A).
    pub leakage: Vec<f64>,
    /// Exact mean of the delay surrogate (the canonical mean).
    pub delay_mean: f64,
    /// Exact sigma of the delay surrogate (shared-factor part only).
    pub delay_sigma: f64,
    /// Exact mean of the leakage surrogate (the Wilkinson total mean).
    pub leakage_mean: f64,
}

/// A control-variate-adjusted estimate: the raw sample mean, the adjusted
/// value after subtracting the known-mean surrogate, and how much variance
/// the adjustment removed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlVariateEstimate {
    /// Plain sample-mean estimate.
    pub raw: f64,
    /// Adjusted estimate `raw − β·(ȳ − E[Y])`.
    pub adjusted: f64,
    /// Fitted regression coefficient `cov(X,Y)/var(Y)`.
    pub beta: f64,
    /// Standard error of the adjusted estimate.
    pub std_error: f64,
    /// `var(X) / var(X − βY)` — how many times fewer samples the adjusted
    /// estimator needs for the same precision (≥ 1 up to fit noise).
    pub variance_reduction: f64,
}

/// Fits `β = cov(X,Y)/var(Y)` and returns the adjusted estimator for
/// `E[X]` given the exactly known `E[Y] = ey`.
fn control_variate(x: &[f64], y: &[f64], ey: f64) -> ControlVariateEstimate {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().max(1) as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        var_x += (a - mx) * (a - mx);
        var_y += (b - my) * (b - my);
    }
    cov /= n;
    var_x /= n;
    var_y /= n;
    let beta = if var_y > 0.0 { cov / var_y } else { 0.0 };
    let adjusted = mx - beta * (my - ey);
    let var_resid = (var_x - beta * cov).max(0.0);
    ControlVariateEstimate {
        raw: mx,
        adjusted,
        beta,
        std_error: (var_resid / n).sqrt(),
        variance_reduction: if var_resid > 0.0 {
            var_x / var_resid
        } else if var_x > 0.0 {
            f64::INFINITY
        } else {
            1.0
        },
    }
}

/// The result of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    pub(crate) samples: Vec<ChipSample>,
    pub(crate) surrogates: Option<SurrogateData>,
}

impl McResult {
    /// Number of chip samples.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// Per-sample data.
    pub fn chips(&self) -> &[ChipSample] {
        &self.samples
    }

    /// Summary statistics of the circuit delay (ps).
    pub fn delay_summary(&self) -> Summary {
        Summary::from_samples(&self.delays())
    }

    /// Summary statistics of the total leakage current (A).
    pub fn leakage_summary(&self) -> Summary {
        Summary::from_samples(&self.leakages())
    }

    /// Empirical timing yield `P(delay ≤ t_clk)`.
    pub fn timing_yield(&self, t_clk: f64) -> f64 {
        let ok = self.samples.iter().filter(|s| s.delay <= t_clk).count();
        ok as f64 / self.samples.len().max(1) as f64
    }

    /// Wilson score confidence interval on the empirical timing yield at
    /// normal quantile `z` (e.g. [`DEFAULT_CI_Z`] for 95%).
    pub fn timing_yield_interval(&self, t_clk: f64, z: f64) -> BinomialInterval {
        let ok = self.samples.iter().filter(|s| s.delay <= t_clk).count();
        wilson_interval(ok, self.samples.len(), z)
    }

    /// Empirical leakage percentile.
    pub fn leakage_percentile(&self, p: f64) -> f64 {
        Summary::percentile(&self.leakages(), p)
    }

    /// Empirical **joint parametric yield**: the fraction of chips that
    /// meet both the timing constraint and the leakage-current budget,
    /// `P(delay ≤ t_clk ∧ leakage ≤ i_max)`. Because fast die leak more,
    /// this is substantially below the product of the marginal yields.
    pub fn joint_yield(&self, t_clk: f64, i_max: f64) -> f64 {
        let ok = self
            .samples
            .iter()
            .filter(|s| s.delay <= t_clk && s.leakage <= i_max)
            .count();
        ok as f64 / self.samples.len().max(1) as f64
    }

    /// Wilson score confidence interval on the empirical joint yield.
    pub fn joint_yield_interval(&self, t_clk: f64, i_max: f64, z: f64) -> BinomialInterval {
        let ok = self
            .samples
            .iter()
            .filter(|s| s.delay <= t_clk && s.leakage <= i_max)
            .count();
        wilson_interval(ok, self.samples.len(), z)
    }

    /// Histogram of the total leakage (for the distribution figures).
    pub fn leakage_histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(&self.leakages(), bins)
    }

    /// Pearson correlation between delay and leakage across chips.
    /// Strongly negative in this technology: fast (short-channel) die leak
    /// more — the effect the statistical optimizer must respect.
    /// An empty sample set has no correlation to report and returns 0.0.
    pub fn delay_leakage_correlation(&self) -> f64 {
        let n = self.samples.len().max(1) as f64;
        let md = self.samples.iter().map(|s| s.delay).sum::<f64>() / n;
        let ml = self.samples.iter().map(|s| s.leakage).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vd = 0.0;
        let mut vl = 0.0;
        for s in &self.samples {
            cov += (s.delay - md) * (s.leakage - ml);
            vd += (s.delay - md) * (s.delay - md);
            vl += (s.leakage - ml) * (s.leakage - ml);
        }
        if vd == 0.0 || vl == 0.0 {
            0.0
        } else {
            cov / (vd.sqrt() * vl.sqrt())
        }
    }

    /// Control-variate-adjusted mean delay, available when the run was
    /// configured with the `cv` layer: subtracts the linearized-delay
    /// surrogate (whose mean is the SSTA canonical mean, known exactly).
    pub fn delay_mean_cv(&self) -> Option<ControlVariateEstimate> {
        let sur = self.surrogates.as_ref()?;
        Some(control_variate(&self.delays(), &sur.delay, sur.delay_mean))
    }

    /// Control-variate-adjusted mean leakage current, available when the
    /// run was configured with the `cv` layer: subtracts the
    /// conditional-mean surrogate `E[I | shared]`, whose expectation is the
    /// Wilkinson total mean, known exactly.
    pub fn leakage_mean_cv(&self) -> Option<ControlVariateEstimate> {
        let sur = self.surrogates.as_ref()?;
        Some(control_variate(
            &self.leakages(),
            &sur.leakage,
            sur.leakage_mean,
        ))
    }

    /// Control-variate-adjusted timing yield at `t_clk`: regresses the
    /// non-linear pass/fail indicator on the *surrogate* indicator
    /// `1{D̃ ≤ t_clk}`, whose expectation `Φ((t_clk − μ)/σ_shared)` is known
    /// in closed form because the surrogate is exactly Gaussian.
    ///
    /// Returns `None` when the run recorded no surrogates or the surrogate
    /// is deterministic (σ_shared = 0).
    pub fn timing_yield_cv(&self, t_clk: f64) -> Option<ControlVariateEstimate> {
        let sur = self.surrogates.as_ref()?;
        if sur.delay_sigma <= 0.0 {
            return None;
        }
        let x: Vec<f64> = self
            .samples
            .iter()
            .map(|s| f64::from(u8::from(s.delay <= t_clk)))
            .collect();
        let y: Vec<f64> = sur
            .delay
            .iter()
            .map(|&d| f64::from(u8::from(d <= t_clk)))
            .collect();
        let ey = phi((t_clk - sur.delay_mean) / sur.delay_sigma);
        Some(control_variate(&x, &y, ey))
    }

    fn delays(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.delay).collect()
    }

    fn leakages(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.leakage).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_result_correlation_is_zero() {
        // Regression: the per-sample sums used to divide by n = 0 and
        // return NaN before the vd/vl guard could fire.
        let r = McResult {
            samples: Vec::new(),
            surrogates: None,
        };
        assert_eq!(r.delay_leakage_correlation(), 0.0);
        assert_eq!(r.timing_yield(1.0), 0.0);
        assert_eq!(
            r.timing_yield_interval(1.0, DEFAULT_CI_Z),
            wilson_interval(0, 0, DEFAULT_CI_Z)
        );
    }

    #[test]
    fn control_variate_with_perfect_surrogate_removes_all_variance() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let est = control_variate(&x, &x, 2.5);
        assert!((est.adjusted - 2.5).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
        assert!(est.variance_reduction.is_infinite());
    }

    #[test]
    fn control_variate_with_useless_surrogate_is_a_no_op() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![5.0; 4]; // zero variance -> beta = 0
        let est = control_variate(&x, &y, 5.0);
        assert_eq!(est.raw, est.adjusted);
        assert_eq!(est.beta, 0.0);
        assert!((est.variance_reduction - 1.0).abs() < 1e-12);
    }
}
