//! Per-sample draw sourcing and the full non-linear chip evaluation.
//!
//! One chip sample consumes a fixed, documented sequence of standard-normal
//! draws — the **sample dimension** that also defines the QMC budget:
//!
//! 1. the `num_shared` shared process factors, in factor order;
//! 2. two gate-local draws per gate in topological order (channel-length
//!    local, then Vth local).
//!
//! The plain sampler takes every draw from the seeded per-sample PRNG
//! sub-stream (`seed ⊕ i·φ`), bit-identical to the historical engine. The
//! Sobol sampler substitutes the leading `min(dimension, MAX_DIM)`
//! draws with coordinates of a scrambled low-discrepancy point and falls
//! back to the same PRNG stream beyond the table — the hybrid QMC+MC
//! scheme. Both depend only on `(seed, i)`, never on the thread layout.

use rand::rngs::StdRng;
use rand::SeedableRng;
use statleak_stats::{SobolSequence, StdNormalSampler};
use statleak_tech::{Design, FactorModel};

/// Weyl-sequence stride for per-sample sub-seeds (`⌊2^64/φ⌋`).
pub(crate) const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The sub-stream seed of sample `i`.
#[inline]
pub(crate) fn sub_seed(seed: u64, i: usize) -> u64 {
    seed ^ (i as u64).wrapping_mul(SEED_STRIDE)
}

/// Number of standard-normal draws one chip evaluation consumes — the QMC
/// dimension budget: shared factors plus two local terms per gate.
pub(crate) fn sample_dimension(design: &Design, fm: &FactorModel) -> usize {
    fm.num_shared() + 2 * design.circuit().num_gates()
}

/// Builds the scrambled Sobol' sequence for a run, covering as much of the
/// sample dimension as the direction-number table allows.
pub(crate) fn qmc_sequence(design: &Design, fm: &FactorModel, seed: u64) -> SobolSequence {
    let dims = sample_dimension(design, fm).min(SobolSequence::MAX_DIM);
    SobolSequence::new(dims, seed)
}

/// A per-sample normal draw source: an optional low-discrepancy prefix,
/// consumed first in the fixed order above, then the seeded PRNG
/// sub-stream. With an empty prefix this is bit-identical to the
/// historical plain sampler.
pub(crate) struct DrawSource<'a> {
    qmc: &'a [f64],
    next: usize,
    rng: StdRng,
    normal: StdNormalSampler,
}

impl<'a> DrawSource<'a> {
    pub(crate) fn new(seed: u64, qmc: &'a [f64]) -> Self {
        Self {
            qmc,
            next: 0,
            rng: StdRng::seed_from_u64(seed),
            normal: StdNormalSampler::new(),
        }
    }

    #[inline]
    pub(crate) fn next_normal(&mut self) -> f64 {
        if self.next < self.qmc.len() {
            let v = self.qmc[self.next];
            self.next += 1;
            v
        } else {
            self.normal.sample(&mut self.rng)
        }
    }
}

/// Evaluates one chip with the full non-linear device models: samples the
/// factors from `draws` (optionally mean-shifting the shared factors by
/// `shift` — the importance-sampling layer), then runs alpha-power delay
/// and exponential leakage over the whole netlist.
///
/// Returns `(delay_ps, leakage_a, shared)` where `shared` holds the
/// *post-shift* shared factor values actually used — what likelihood
/// ratios and control-variate surrogates must be evaluated at.
pub(crate) fn evaluate_chip(
    design: &Design,
    fm: &FactorModel,
    seed: u64,
    qmc: &[f64],
    shift: Option<&[f64]>,
) -> (f64, f64, Vec<f64>) {
    let mut draws = DrawSource::new(seed, qmc);
    let circuit = design.circuit();

    let mut shared: Vec<f64> = (0..fm.num_shared()).map(|_| draws.next_normal()).collect();
    if let Some(s) = shift {
        for (x, d) in shared.iter_mut().zip(s) {
            *x += d;
        }
    }

    let mut arrival = vec![0.0_f64; circuit.num_nodes()];
    let mut leakage = 0.0;
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if !node.kind.is_gate() {
            continue;
        }
        let dl = fm.sample_l(id, &shared, draws.next_normal());
        let dvth = fm.vth_local(id) * draws.next_normal();
        let d = design.library().delay(
            node.kind,
            node.fanin.len(),
            design.size(id),
            design.vth(id),
            design.load_cap(id),
            dl,
            dvth,
        );
        let worst = node
            .fanin
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[id.index()] = worst + d;
        leakage += design.library().leakage(
            node.kind,
            node.fanin.len(),
            design.size(id),
            design.vth(id),
            dl,
            dvth,
        );
    }
    let delay = circuit
        .outputs()
        .iter()
        .map(|o| arrival[o.index()])
        .fold(0.0, f64::max);
    (delay, leakage, shared)
}
