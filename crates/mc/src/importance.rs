//! Mean-shift importance sampling for tail-yield estimation, with the
//! SSTA canonical supplying the failure direction analytically.
//!
//! Estimating a miss probability `p = P(D > t_clk)` at a 99.9% yield
//! target by counting needs `≫ 1/p` samples just to see one failure. The
//! ISLE recipe (Bayrakci, Demir, Tasiran) instead samples the shared
//! factors from a Gaussian whose mean is *shifted into the failure
//! region*, and unbiases each sample with its likelihood ratio:
//!
//! ```text
//! z ~ N(s, I)   ⇒   p = E[1{D(z) > t} · w(z)],
//! w(z) = φ(z)/φ(z − s) = exp(−sᵀz + ½‖s‖²).
//! ```
//!
//! The shift `s` is the most-likely-failure point of the *linear* SSTA
//! surrogate `D̃ = μ + aᵀz` restricted to the shared factors:
//! `s = a·(t_clk − μ)/σ²` — one SSTA analysis, no search. Because the
//! weights are exact, the estimator is unbiased for the **non-linear**
//! model no matter how approximate the surrogate is; the surrogate only
//! controls how much variance the shift removes.

use rayon::prelude::*;
use statleak_obs as obs;
use statleak_stats::BinomialInterval;
use statleak_tech::{Design, FactorModel};

use crate::config::SamplerKind;
use crate::result::DEFAULT_CI_Z;
use crate::sample::{evaluate_chip, qmc_sequence, sub_seed};
use crate::surrogate::DelaySurrogate;
use crate::MonteCarlo;

/// The likelihood ratio `φ(x)/φ(x − shift)` of a sample `x` drawn from the
/// shifted Gaussian `N(shift, I)`: `exp(−shiftᵀx + ½‖shift‖²)`.
///
/// Exposed for the unbiasedness tests: averaging `w·1{x ∈ A}` over shifted
/// samples must reproduce `P(Z ∈ A)` for any event `A` and any shift.
pub fn importance_weight(shift: &[f64], sample: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut norm2 = 0.0;
    for (&s, &x) in shift.iter().zip(sample) {
        dot += s * x;
        norm2 += s * s;
    }
    (-dot + 0.5 * norm2).exp()
}

/// A tail-yield estimate with its uncertainty and cost, produced by
/// [`MonteCarlo::timing_yield_estimate`] under any sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldEstimate {
    /// Estimated timing yield `P(D ≤ t_clk)`, clamped to `[0, 1]`.
    pub yield_value: f64,
    /// Estimated miss probability (the directly estimated quantity under
    /// importance sampling; `1 − yield` otherwise).
    pub miss_probability: f64,
    /// Standard error of the miss-probability estimate.
    pub std_error: f64,
    /// 95% confidence interval on the yield: Wilson score for counting
    /// estimators, normal-theory `±1.96·SE` for weighted ones.
    pub ci: BinomialInterval,
    /// Effective sample size `(Σw)²/Σw²` — equals the sample count for
    /// unweighted estimators; a small value flags likelihood-ratio
    /// degeneration.
    pub ess: f64,
    /// Non-linear full-chip evaluations spent (the cost unit the
    /// `BENCH_mc.json` comparisons are denominated in).
    pub evaluations: usize,
    /// `‖s‖` of the applied mean shift (0 when importance sampling is off).
    pub shift_magnitude: f64,
}

impl MonteCarlo {
    /// Estimates the timing yield at `t_clk` honoring the configured
    /// sampler and variance-reduction layers:
    ///
    /// * importance sampling on → mean-shifted estimator above (composes
    ///   with the Sobol sampler; the control-variate layer is ignored here);
    /// * otherwise → a population run; with the `cv` layer the
    ///   indicator-regression estimator [`crate::McResult::timing_yield_cv`]
    ///   supplies the point estimate and its narrowed interval.
    ///
    /// Deterministic for a fixed config: bit-identical across thread
    /// counts, like every other entry point.
    pub fn timing_yield_estimate(
        &self,
        design: &Design,
        fm: &FactorModel,
        t_clk: f64,
    ) -> YieldEstimate {
        if self.config.variance_reduction.importance_sampling {
            return self.importance_yield(design, fm, t_clk);
        }
        self.yield_estimate_from(&self.run(design, fm), t_clk)
    }

    /// Builds the yield estimate from an already-computed population run
    /// (so callers that need the population for other metrics don't pay
    /// for a second batch). Uses the control-variate estimator when the
    /// run recorded surrogates; the importance-sampling layer does not
    /// apply to population runs.
    pub fn yield_estimate_from(&self, result: &crate::McResult, t_clk: f64) -> YieldEstimate {
        let n = result.samples();
        if let Some(cve) = result.timing_yield_cv(t_clk) {
            let adjusted = cve.adjusted.clamp(0.0, 1.0);
            let z = DEFAULT_CI_Z;
            return YieldEstimate {
                yield_value: adjusted,
                miss_probability: 1.0 - adjusted,
                std_error: cve.std_error,
                ci: BinomialInterval {
                    lo: (adjusted - z * cve.std_error).max(0.0),
                    hi: (adjusted + z * cve.std_error).min(1.0),
                },
                ess: n as f64,
                evaluations: n,
                shift_magnitude: 0.0,
            };
        }
        let y = result.timing_yield(t_clk);
        YieldEstimate {
            yield_value: y,
            miss_probability: 1.0 - y,
            std_error: (y * (1.0 - y) / n.max(1) as f64).sqrt(),
            ci: result.timing_yield_interval(t_clk, DEFAULT_CI_Z),
            ess: n as f64,
            evaluations: n,
            shift_magnitude: 0.0,
        }
    }

    /// The mean-shifted estimator itself.
    fn importance_yield(&self, design: &Design, fm: &FactorModel, t_clk: f64) -> YieldEstimate {
        let _span = obs::span!("mc.importance_batch");
        let n = self.config.samples;
        obs::counter!("mc_runs_total").inc();
        obs::counter!("mc_samples_total").add(n as u64);
        obs::counter!("mc_nonlinear_evals_total").add(n as u64);

        let surrogate = DelaySurrogate::build(design, fm);
        let shift = surrogate.failure_shift(t_clk);
        let shift_magnitude = shift.iter().map(|s| s * s).sum::<f64>().sqrt();
        obs::histogram!("mc_is_shift_milli").record((shift_magnitude * 1e3) as u64);

        let seq = match self.config.sampler {
            SamplerKind::Plain => None,
            SamplerKind::Sobol => Some(qmc_sequence(design, fm, self.config.seed)),
        };
        if seq.is_some() {
            assert!(
                n as u128 <= u32::MAX as u128 + 1,
                "the Sobol index space holds 2^32 points"
            );
        }
        let seed = self.config.seed;
        let eval = |i: usize| -> (f64, f64) {
            let qmc: Vec<f64> = match &seq {
                Some(s) => {
                    let mut buf = vec![0.0; s.dims()];
                    s.normal_point(i as u32, &mut buf);
                    buf
                }
                None => Vec::new(),
            };
            let (delay, _, shared) =
                evaluate_chip(design, fm, sub_seed(seed, i), &qmc, Some(&shift));
            let w = importance_weight(&shift, &shared);
            (if delay > t_clk { w } else { 0.0 }, w)
        };
        let pairs: Vec<(f64, f64)> = self.in_pool(|| (0..n).into_par_iter().map(eval).collect());

        // Sequential, index-ordered reduction: bit-identical regardless of
        // how the map above was scheduled.
        let nf = n as f64;
        let (mut sum, mut sum_sq, mut w_sum, mut w_sum_sq) = (0.0, 0.0, 0.0, 0.0);
        let (mut w_min, mut w_max) = (f64::INFINITY, 0.0_f64);
        for &(contrib, w) in &pairs {
            sum += contrib;
            sum_sq += contrib * contrib;
            w_sum += w;
            w_sum_sq += w * w;
            w_min = w_min.min(w);
            w_max = w_max.max(w);
        }
        let miss = sum / nf;
        let var = (sum_sq / nf - miss * miss).max(0.0);
        let std_error = (var / nf).sqrt();
        let ess = if w_sum_sq > 0.0 {
            w_sum * w_sum / w_sum_sq
        } else {
            0.0
        };
        obs::histogram!("mc_is_ess").record(ess as u64);
        if w_min > 0.0 && w_max.is_finite() {
            obs::histogram!("mc_is_weight_spread_centilog")
                .record(((w_max / w_min).log10() * 100.0) as u64);
        }

        let yield_value = (1.0 - miss).clamp(0.0, 1.0);
        let z = DEFAULT_CI_Z;
        YieldEstimate {
            yield_value,
            miss_probability: miss,
            std_error,
            ci: BinomialInterval {
                lo: (yield_value - z * std_error).max(0.0),
                hi: (yield_value + z * std_error).min(1.0),
            },
            ess,
            evaluations: n,
            shift_magnitude,
        }
    }

    /// Estimates the far-tail timing miss probability `P(D > t_clk)` with a
    /// hand-picked mean shift of the die-to-die channel-length factor
    /// (`shared[0] += shift`), weighting each sample by its likelihood
    /// ratio. Predates [`Self::timing_yield_estimate`], which derives the
    /// whole shift vector from the SSTA canonical instead; kept as the
    /// single-knob reference estimator.
    ///
    /// Returns `(estimate, standard_error)`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is negative (shift toward the slow tail only).
    pub fn tail_miss_probability(
        &self,
        design: &Design,
        fm: &FactorModel,
        t_clk: f64,
        shift: f64,
    ) -> (f64, f64) {
        assert!(shift >= 0.0, "shift must point into the slow tail");
        let n = self.config.samples;
        let mut shift_vec = vec![0.0; fm.num_shared()];
        shift_vec[0] = shift;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let seed = sub_seed(self.config.seed, i);
            let (delay, _, shared) = evaluate_chip(design, fm, seed, &[], Some(&shift_vec));
            let x = if delay > t_clk {
                importance_weight(&shift_vec, &shared)
            } else {
                0.0
            };
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        (mean, (var / n as f64).sqrt())
    }
}
