//! The ISCAS85-class benchmark suite used throughout the evaluation.
//!
//! `c17` is the genuine published netlist; the ten larger circuits are
//! produced by the deterministic generator with the published I/O counts,
//! gate counts, and logic depths of the real ISCAS85 suite (see
//! `DESIGN.md` §5 for the substitution rationale).

use crate::circuit::Circuit;
use crate::generate::{generate, GenSpec};

/// Published structural parameters of one ISCAS85 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name, e.g. `"c432"`.
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Logic gates.
    pub gates: usize,
    /// Logic depth (levels of gates on the longest path).
    pub depth: usize,
    /// Original circuit function, for documentation.
    pub function: &'static str,
}

/// The published ISCAS85 suite characteristics (c17 plus the ten classic
/// circuits evaluated by the DAC 2004 paper's lineage).
pub const SUITE: [BenchmarkSpec; 11] = [
    BenchmarkSpec {
        name: "c17",
        inputs: 5,
        outputs: 2,
        gates: 6,
        depth: 3,
        function: "toy NAND network",
    },
    BenchmarkSpec {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 160,
        depth: 17,
        function: "27-channel interrupt controller",
    },
    BenchmarkSpec {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 202,
        depth: 11,
        function: "32-bit SEC circuit",
    },
    BenchmarkSpec {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 383,
        depth: 24,
        function: "8-bit ALU",
    },
    BenchmarkSpec {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 546,
        depth: 24,
        function: "32-bit SEC circuit (expanded)",
    },
    BenchmarkSpec {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 880,
        depth: 40,
        function: "16-bit SEC/DED circuit",
    },
    BenchmarkSpec {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 1193,
        depth: 32,
        function: "12-bit ALU and controller",
    },
    BenchmarkSpec {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1669,
        depth: 47,
        function: "8-bit ALU",
    },
    BenchmarkSpec {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 2307,
        depth: 49,
        function: "9-bit ALU",
    },
    BenchmarkSpec {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        gates: 2416,
        depth: 124,
        function: "16x16 multiplier",
    },
    BenchmarkSpec {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 3512,
        depth: 43,
        function: "32-bit adder/comparator",
    },
];

/// The genuine `c17` netlist parsed from its `.bench` source.
///
/// ```
/// let c = statleak_netlist::benchmarks::c17();
/// assert_eq!(c.name(), "c17");
/// ```
pub fn c17() -> Circuit {
    crate::bench::parse("c17", include_str!("c17.bench")).expect("embedded c17.bench is valid")
}

/// Looks up the published spec of a benchmark by name.
pub fn spec(name: &str) -> Option<&'static BenchmarkSpec> {
    SUITE.iter().find(|s| s.name == name)
}

/// Builds one benchmark circuit by name.
///
/// `c17` returns the genuine netlist; all others are deterministically
/// generated to the published structural parameters.
///
/// ```
/// let c = statleak_netlist::benchmarks::by_name("c432").expect("known");
/// assert_eq!(c.num_gates(), 160);
/// assert_eq!(c.stats().depth, 17);
/// ```
pub fn by_name(name: &str) -> Option<Circuit> {
    if let Some(s) = spec(name) {
        if s.name == "c17" {
            return Some(c17());
        }
        return Some(generate(&GenSpec::new(
            s.name, s.inputs, s.outputs, s.gates, s.depth,
        )));
    }
    generated_spec(name).map(|s| generate(&s))
}

/// Parses a synthetic scaling-benchmark name of the form `gen<N>[k|m]`
/// (e.g. `gen10k`, `gen100k`, `gen1m`) into a generator spec with
/// structural parameters derived from the gate count: I/O width
/// `(gates/64).clamp(32, 4096)` and logic depth `round(2·log2(gates)) + 14`,
/// which extrapolates the ISCAS85 suite's gate-count/depth trend. Gate
/// counts outside `[128, 4_000_000]` and malformed names return `None`.
///
/// These names work everywhere a suite name does (`by_name`, the CLI, the
/// perf harness), giving deterministic 100k–1M-gate circuits for scaling
/// runs without storing netlist files.
///
/// ```
/// let c = statleak_netlist::benchmarks::by_name("gen1k").expect("known");
/// assert_eq!(c.num_gates(), 1000);
/// ```
pub fn generated_spec(name: &str) -> Option<GenSpec> {
    let digits = name.strip_prefix("gen")?;
    let (digits, mult) = match digits.as_bytes().last()? {
        b'k' => (&digits[..digits.len() - 1], 1_000usize),
        b'm' => (&digits[..digits.len() - 1], 1_000_000usize),
        _ => (digits, 1),
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let gates = digits.parse::<usize>().ok()?.checked_mul(mult)?;
    if !(128..=4_000_000).contains(&gates) {
        return None;
    }
    let io = (gates / 64).clamp(32, 4096);
    let depth = (2.0 * (gates as f64).log2()).round() as usize + 14;
    Some(GenSpec::new(name, io, io, gates, depth))
}

/// Builds the whole suite (c17 first, then by size).
pub fn suite() -> Vec<Circuit> {
    SUITE
        .iter()
        .map(|s| by_name(s.name).expect("suite entries are known"))
        .collect()
}

/// The names of the ten "large" benchmarks (everything except c17), the
/// set evaluated in the paper's tables.
pub fn evaluation_names() -> Vec<&'static str> {
    SUITE.iter().skip(1).map(|s| s.name).collect()
}

/// Published-style structural parameters of one ISCAS89-class sequential
/// benchmark (gate counts per the published suite; logic depths
/// approximate — see `DESIGN.md` §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqBenchmarkSpec {
    /// Benchmark name, e.g. `"s1423"`.
    pub name: &'static str,
    /// Primary inputs (excluding flip-flop outputs).
    pub inputs: usize,
    /// Primary outputs (excluding flip-flop inputs).
    pub outputs: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Combinational logic depth.
    pub depth: usize,
}

/// The ISCAS89-class sequential suite (a representative size ladder).
pub const SEQ_SUITE: [SeqBenchmarkSpec; 6] = [
    SeqBenchmarkSpec {
        name: "s27",
        inputs: 4,
        outputs: 1,
        dffs: 3,
        gates: 10,
        depth: 5,
    },
    SeqBenchmarkSpec {
        name: "s344",
        inputs: 9,
        outputs: 11,
        dffs: 15,
        gates: 160,
        depth: 14,
    },
    SeqBenchmarkSpec {
        name: "s526",
        inputs: 3,
        outputs: 6,
        dffs: 21,
        gates: 193,
        depth: 9,
    },
    SeqBenchmarkSpec {
        name: "s1196",
        inputs: 14,
        outputs: 14,
        dffs: 18,
        gates: 529,
        depth: 24,
    },
    SeqBenchmarkSpec {
        name: "s1423",
        inputs: 17,
        outputs: 5,
        dffs: 74,
        gates: 657,
        depth: 59,
    },
    SeqBenchmarkSpec {
        name: "s5378",
        inputs: 35,
        outputs: 49,
        dffs: 164,
        gates: 2779,
        depth: 25,
    },
];

/// Builds a sequential benchmark: the combinational core is generated to
/// spec, wrapped in ISCAS89-style `.bench` text with `DFF` statements, and
/// parsed back through the flip-flop cut — so the returned circuit is the
/// combinational core with the FF outputs as pseudo primary inputs and FF
/// data inputs as pseudo primary outputs (what timing/leakage analysis of
/// a sequential design operates on). Also returns the `.bench` text for
/// users who want the sequential netlist itself.
pub fn sequential_by_name(name: &str) -> Option<(Circuit, String)> {
    let s = SEQ_SUITE.iter().find(|s| s.name == name)?;
    let core = generate(&GenSpec::new(
        s.name,
        s.inputs + s.dffs,
        s.outputs + s.dffs,
        s.gates,
        s.depth,
    ));
    // Assemble .bench: real PIs/POs first, then DFFs binding the last
    // `dffs` core inputs (FF outputs Q) to the last `dffs` core outputs
    // (FF data inputs D), then the gate definitions.
    let mut text = format!("# {} (ISCAS89-class, generated)\n", s.name);
    for &i in core.inputs().iter().take(s.inputs) {
        text.push_str(&format!("INPUT({})\n", core.node(i).name));
    }
    for &o in core.outputs().iter().take(s.outputs) {
        text.push_str(&format!("OUTPUT({})\n", core.node(o).name));
    }
    for k in 0..s.dffs {
        let q = &core.node(core.inputs()[s.inputs + k]).name;
        let d = &core.node(core.outputs()[s.outputs + k]).name;
        text.push_str(&format!("{q} = DFF({d})\n"));
    }
    for id in core.gates() {
        let node = core.node(id);
        let args: Vec<&str> = node.fanin.iter().map(|f| core.name_of(*f)).collect();
        text.push_str(&format!(
            "{} = {}({})\n",
            node.name,
            node.kind.bench_keyword(),
            args.join(", ")
        ));
    }
    let (circuit, dffs) =
        crate::bench::parse_with_dff_count(s.name, &text).expect("generated netlist is valid");
    debug_assert_eq!(dffs, s.dffs);
    Some((circuit, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_entry_matches_published_structure() {
        for s in &SUITE {
            let c = by_name(s.name).unwrap();
            let st = c.stats();
            assert_eq!(st.inputs, s.inputs, "{} inputs", s.name);
            assert_eq!(st.gates, s.gates, "{} gates", s.name);
            assert_eq!(st.depth, s.depth, "{} depth", s.name);
            // Generated circuits may very rarely promote an extra output;
            // assert we are exact or within one.
            assert!(
                st.outputs >= s.outputs && st.outputs <= s.outputs + 2,
                "{}: outputs {} vs spec {}",
                s.name,
                st.outputs,
                s.outputs
            );
        }
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(by_name("c9999").is_none());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn c17_is_genuine() {
        let c = c17();
        assert_eq!(c.num_gates(), 6);
        assert!(c.find("G22").is_some());
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        assert_eq!(a, b);
    }

    #[test]
    fn evaluation_names_excludes_c17() {
        let names = evaluation_names();
        assert_eq!(names.len(), 10);
        assert!(!names.contains(&"c17"));
        assert!(names.contains(&"c6288"));
    }
}

#[cfg(test)]
mod seq_tests {
    use super::*;

    #[test]
    fn sequential_suite_builds_to_spec() {
        for s in &SEQ_SUITE {
            let (c, text) = sequential_by_name(s.name).unwrap();
            assert_eq!(c.num_inputs(), s.inputs + s.dffs, "{}", s.name);
            assert_eq!(c.num_outputs(), s.outputs + s.dffs, "{}", s.name);
            assert_eq!(c.num_gates(), s.gates, "{}", s.name);
            assert_eq!(c.stats().depth, s.depth, "{}", s.name);
            assert_eq!(text.matches("DFF").count(), s.dffs, "{}", s.name);
        }
    }

    #[test]
    fn sequential_text_reparses_identically() {
        let (c, text) = sequential_by_name("s344").unwrap();
        let (c2, dffs) = crate::bench::parse_with_dff_count("s344", &text).unwrap();
        assert_eq!(c, c2);
        assert_eq!(dffs, 15);
    }

    #[test]
    fn unknown_sequential_is_none() {
        assert!(sequential_by_name("s9999").is_none());
    }

    #[test]
    fn sequential_core_is_analyzable() {
        // The FF-cut core must be a normal combinational circuit: acyclic,
        // simulable, with every FF Q reachable as an input.
        let (c, _) = sequential_by_name("s27").unwrap();
        let v = c.simulate(&vec![true; c.num_inputs()]);
        assert_eq!(v.len(), c.num_nodes());
    }
}
