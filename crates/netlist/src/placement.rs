//! Deterministic die placement.
//!
//! Spatially correlated process variation needs every gate to have a
//! physical location. The paper's flow takes placed netlists; here we use a
//! deterministic structural placement: gates are spread across a unit die
//! with the x-coordinate following logic level (data flows left→right, as a
//! row-based placer would produce for a levelized design) and the
//! y-coordinate spreading each level's gates evenly, with a small
//! deterministic stagger so no two gates coincide.

use crate::circuit::{Circuit, NodeId};

/// A physical placement: one `(x, y)` position in the unit square per node.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    positions: Vec<(f64, f64)>,
}

impl Placement {
    /// Places every node of the circuit deterministically on the unit die.
    ///
    /// ```
    /// use statleak_netlist::{benchmarks, placement::Placement};
    /// let c = benchmarks::c17();
    /// let p = Placement::by_level(&c);
    /// let (x, y) = p.position(c.outputs()[0]);
    /// assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
    /// ```
    pub fn by_level(circuit: &Circuit) -> Self {
        let n = circuit.num_nodes();
        let depth = circuit
            .topo_order()
            .iter()
            .map(|&id| circuit.level(id))
            .max()
            .unwrap_or(0)
            .max(1);
        // Count nodes per level, then assign within-level ranks.
        let mut per_level = vec![0usize; depth + 1];
        for &id in circuit.topo_order() {
            per_level[circuit.level(id)] += 1;
        }
        let mut next_rank = vec![0usize; depth + 1];
        let mut positions = vec![(0.0, 0.0); n];
        for &id in circuit.topo_order() {
            let lvl = circuit.level(id);
            let rank = next_rank[lvl];
            next_rank[lvl] += 1;
            let count = per_level[lvl].max(1);
            let x = (lvl as f64 + 0.5) / (depth as f64 + 1.0);
            // Evenly spread plus a tiny level-dependent stagger.
            let y = (rank as f64 + 0.5) / count as f64;
            let stagger = ((lvl * 2654435761usize) % 97) as f64 / 97.0 * 0.5 / count as f64;
            positions[id.index()] = (x, (y + stagger).min(1.0));
        }
        Self { positions }
    }

    /// The position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds for the placed circuit.
    #[inline]
    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.positions[id.index()]
    }

    /// All positions, indexed by [`NodeId`].
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Euclidean distance between two placed nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let (ax, ay) = self.position(a);
        let (bx, by) = self.position(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn all_positions_inside_die() {
        let c = benchmarks::by_name("c432").unwrap();
        let p = Placement::by_level(&c);
        for &(x, y) in p.positions() {
            assert!((0.0..=1.0).contains(&x), "x={x}");
            assert!((0.0..=1.0).contains(&y), "y={y}");
        }
    }

    #[test]
    fn deeper_gates_further_right() {
        let c = benchmarks::c17();
        let p = Placement::by_level(&c);
        let input = c.inputs()[0];
        let output = c.outputs()[0];
        assert!(p.position(input).0 < p.position(output).0);
    }

    #[test]
    fn distance_symmetric_and_zero_on_self() {
        let c = benchmarks::c17();
        let p = Placement::by_level(&c);
        let a = c.inputs()[0];
        let b = c.outputs()[0];
        assert_eq!(p.distance(a, a), 0.0);
        assert!((p.distance(a, b) - p.distance(b, a)).abs() < 1e-15);
    }

    #[test]
    fn placement_is_deterministic() {
        let c = benchmarks::by_name("c880").unwrap();
        assert_eq!(Placement::by_level(&c), Placement::by_level(&c));
    }
}
