//! Deterministic ISCAS85-class circuit generation.
//!
//! Real ISCAS85 netlist files are not redistributable in this offline
//! environment (see `DESIGN.md` §5), so the benchmark suite is produced by
//! a *seeded, deterministic* generator that reproduces the structural
//! properties the optimizers actually interact with: gate count, I/O
//! count, logic depth, the NAND-heavy ISCAS85 gate mix, and a realistic
//! fanout distribution. Identical seeds always produce identical circuits,
//! so every table and figure in the reproduction is stable run-to-run.

use crate::circuit::{Circuit, CircuitBuilder, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structural specification for a generated circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenSpec {
    /// Circuit name (also salts the RNG so different benchmarks differ).
    pub name: String,
    /// Number of primary inputs (must be ≥ 2).
    pub inputs: usize,
    /// Number of primary outputs (must be ≥ 1).
    pub outputs: usize,
    /// Number of logic gates (must be ≥ outputs and ≥ depth).
    pub gates: usize,
    /// Logic depth (longest input→output path in gates, must be ≥ 2).
    pub depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GenSpec {
    /// Creates a spec with the given structure and a default seed.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        gates: usize,
        depth: usize,
    ) -> Self {
        Self {
            name: name.into(),
            inputs,
            outputs,
            gates,
            depth,
            seed: 0x5EED_1EA4,
        }
    }
}

/// `true` for gate kinds whose fanin list may grow arbitrarily.
fn is_variadic(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor
    )
}

/// Weighted ISCAS85-like gate mix: NAND-dominated, some inverters,
/// occasional XOR parity logic.
fn pick_kind(rng: &mut StdRng) -> GateKind {
    let r: f64 = rng.gen();
    match r {
        r if r < 0.38 => GateKind::Nand,
        r if r < 0.53 => GateKind::Nor,
        r if r < 0.63 => GateKind::And,
        r if r < 0.72 => GateKind::Or,
        r if r < 0.87 => GateKind::Not,
        r if r < 0.92 => GateKind::Xor,
        r if r < 0.95 => GateKind::Xnor,
        _ => GateKind::Buff,
    }
}

/// Generates a circuit matching the spec.
///
/// The generated DAG is layered: gates are spread over `depth` levels, each
/// gate takes at least one fanin from the immediately preceding level (which
/// pins the logic depth exactly), remaining fanins are drawn from earlier
/// levels with a bias toward recent ones. Two structural guarantees make the
/// stitching of dangling logic exact:
///
/// 1. the deepest level holds at most `outputs` gates, so every deepest
///    gate can be a primary output, and
/// 2. the deepest level always contains at least one variadic (NAND) gate —
///    the *absorber* — so any dangling gate at a shallower level can always
///    be consumed as an extra fanin.
///
/// # Panics
///
/// Panics if the spec is degenerate (`inputs < 2`, `outputs < 1`,
/// `gates < depth`, `gates < outputs`, or `depth < 2`).
///
/// ```
/// use statleak_netlist::generate::{generate, GenSpec};
/// let c = generate(&GenSpec::new("demo", 8, 4, 64, 9));
/// assert_eq!(c.num_gates(), 64);
/// assert_eq!(c.num_outputs(), 4);
/// assert_eq!(c.stats().depth, 9);
/// ```
pub fn generate(spec: &GenSpec) -> Circuit {
    assert!(spec.inputs >= 2, "need at least 2 inputs");
    assert!(spec.outputs >= 1, "need at least 1 output");
    assert!(spec.depth >= 2, "depth must be >= 2");
    assert!(
        spec.gates >= spec.depth,
        "need at least one gate per level ({} gates < depth {})",
        spec.gates,
        spec.depth
    );
    assert!(
        spec.gates >= spec.outputs,
        "need at least as many gates as outputs"
    );

    // Salt the seed with the name so each benchmark is distinct.
    let salt = spec
        .name
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
    let mut rng = StdRng::seed_from_u64(spec.seed ^ salt);

    // ---- Distribute gates over levels 1..=depth (each level >= 1). ----
    let mut per_level = vec![1usize; spec.depth];
    let mut remaining = spec.gates - spec.depth;
    // Bias extra gates toward the shallow part of the circuit, like real
    // benchmarks whose cones narrow toward the outputs. The deepest level
    // is capped at `outputs` so every deepest gate can become an output.
    let last = spec.depth - 1;
    let last_cap = spec.outputs.max(1);
    while remaining > 0 {
        let t: f64 = rng.gen();
        let mut idx = (((t * t) * spec.depth as f64) as usize).min(last);
        if idx == last && per_level[last] >= last_cap {
            idx = last.saturating_sub(1);
        }
        per_level[idx] += 1;
        remaining -= 1;
    }

    // ---- Create gates level by level. ----
    // `pool[l]` = names of nodes at level l (level 0 = inputs).
    let mut pool: Vec<Vec<String>> = Vec::with_capacity(spec.depth + 1);
    pool.push((0..spec.inputs).map(|i| format!("I{i}")).collect());

    let mut builder = CircuitBuilder::new(spec.name.clone());
    for name in &pool[0] {
        builder
            .add_input(name.clone())
            .expect("generated input names are unique");
    }

    // (name, kind, fanin, level) records; stitched before emission.
    let mut gate_records: Vec<(String, GateKind, Vec<String>, usize)> = Vec::new();
    let mut gate_counter = 0usize;

    for (lvl0, &count) in per_level.iter().enumerate() {
        let level = lvl0 + 1;
        let mut this_level = Vec::with_capacity(count);
        for slot in 0..count {
            // The first gate of the deepest level is the NAND absorber.
            let kind = if level == spec.depth && slot == 0 {
                GateKind::Nand
            } else {
                pick_kind(&mut rng)
            };
            let arity = match kind {
                GateKind::Not | GateKind::Buff => 1,
                GateKind::Xor | GateKind::Xnor => 2,
                _ => {
                    // 2-4 inputs, mostly 2.
                    let r: f64 = rng.gen();
                    if r < 0.62 {
                        2
                    } else if r < 0.90 {
                        3
                    } else {
                        4
                    }
                }
            };
            let mut fanin = Vec::with_capacity(arity);
            // First fanin pinned to the previous level (pins the depth).
            let prev = &pool[level - 1];
            fanin.push(prev[rng.gen_range(0..prev.len())].clone());
            for _ in 1..arity {
                // Bias toward recent levels: geometric walk backwards.
                let mut l = level - 1;
                while l > 0 && rng.gen::<f64>() < 0.45 {
                    l -= 1;
                }
                let cands = &pool[l];
                let pick = cands[rng.gen_range(0..cands.len())].clone();
                if !fanin.contains(&pick) {
                    fanin.push(pick);
                }
            }
            let name = format!("G{gate_counter}");
            gate_counter += 1;
            gate_records.push((name.clone(), kind, fanin, level));
            this_level.push(name);
        }
        pool.push(this_level);
    }

    // ---- Stitch dangling logic back in. ----
    let mut consumed: std::collections::HashSet<String> = gate_records
        .iter()
        .flat_map(|(_, _, fanin, _)| fanin.iter().cloned())
        .collect();

    // Variadic gates grouped for quick "deeper than l" lookups. Creation
    // order means levels are non-decreasing, so the gates strictly deeper
    // than any level form a suffix — found by binary search rather than a
    // per-call filter scan (which is quadratic at million-gate scale).
    let variadic: Vec<(usize, usize)> = gate_records
        .iter()
        .enumerate()
        .filter(|(_, (_, kind, _, _))| is_variadic(*kind))
        .map(|(i, (_, _, _, lvl))| (i, *lvl))
        .collect();
    debug_assert!(
        variadic.windows(2).all(|w| w[0].1 <= w[1].1),
        "variadic levels are non-decreasing in creation order"
    );
    debug_assert!(
        variadic.iter().any(|&(_, lvl)| lvl == spec.depth),
        "absorber guarantees a variadic gate at the deepest level"
    );

    // Consume a dangling node `name` (at level `lvl`) in some variadic gate
    // strictly deeper than `lvl`. The absorber makes this always possible
    // for lvl < depth. The candidate suffix preserves the exact order the
    // historical filter produced, so the RNG draws and picks are unchanged.
    let absorb = |name: &str,
                  lvl: usize,
                  rng: &mut StdRng,
                  gate_records: &mut Vec<(String, GateKind, Vec<String>, usize)>| {
        let start = variadic.partition_point(|&(_, vl)| vl <= lvl);
        let cands = &variadic[start..];
        debug_assert!(!cands.is_empty(), "absorber must exist deeper than {lvl}");
        // Try a few random candidates that don't already contain the node.
        for _ in 0..4 {
            let (gi, _) = cands[rng.gen_range(0..cands.len())];
            if !gate_records[gi].2.iter().any(|f| f == name) {
                gate_records[gi].2.push(name.to_string());
                return;
            }
        }
        // Fall back to the first candidate not containing it (the absorber
        // at the deepest level will match unless it already contains it).
        for &(gi, _) in cands {
            if !gate_records[gi].2.iter().any(|f| f == name) {
                gate_records[gi].2.push(name.to_string());
                return;
            }
        }
        // Already consumed everywhere it could go — nothing to do.
    };

    // Dangling inputs first (level 0).
    let dangling_inputs: Vec<String> = pool[0]
        .iter()
        .filter(|n| !consumed.contains(*n))
        .cloned()
        .collect();
    for name in dangling_inputs {
        absorb(&name, 0, &mut rng, &mut gate_records);
        consumed.insert(name);
    }

    // Dangling gates: deepest become outputs, shallower are absorbed.
    let mut dangling_gates: Vec<(String, usize)> = gate_records
        .iter()
        .filter(|(n, _, _, _)| !consumed.contains(n))
        .map(|(n, _, _, lvl)| (n.clone(), *lvl))
        .collect();
    dangling_gates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let outputs_from_dangling: Vec<String> = dangling_gates
        .iter()
        .take(spec.outputs)
        .map(|(n, _)| n.clone())
        .collect();
    for (name, lvl) in dangling_gates.iter().skip(spec.outputs) {
        debug_assert!(
            *lvl < spec.depth,
            "deepest level holds at most `outputs` gates, all taken as outputs"
        );
        absorb(name, *lvl, &mut rng, &mut gate_records);
    }

    // Top up outputs from the deepest gates if too few gates dangled.
    let mut outputs = outputs_from_dangling;
    if outputs.len() < spec.outputs {
        for (name, _, _, _) in gate_records.iter().rev() {
            if outputs.len() >= spec.outputs {
                break;
            }
            if !outputs.contains(name) {
                outputs.push(name.clone());
            }
        }
    }

    // ---- Emit. ----
    for (name, kind, fanin, _) in &gate_records {
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        builder
            .add_gate(name.clone(), *kind, &refs)
            .expect("generated gate names are unique");
    }
    for o in &outputs {
        builder.mark_output(o.clone()).expect("infallible");
    }
    builder
        .build()
        .expect("generator produces structurally valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_spec_counts() {
        let spec = GenSpec::new("t1", 12, 6, 100, 12);
        let c = generate(&spec);
        assert_eq!(c.num_inputs(), 12);
        assert_eq!(c.num_gates(), 100);
        assert_eq!(c.num_outputs(), 6);
        assert_eq!(c.stats().depth, 12);
    }

    #[test]
    fn exact_structure_across_many_specs() {
        for (i, o, g, d) in [
            (5, 2, 10, 3),
            (36, 7, 160, 17),
            (60, 26, 383, 24),
            (33, 25, 880, 40),
            (32, 32, 2416, 124),
        ] {
            let c = generate(&GenSpec::new(format!("s{i}_{g}"), i, o, g, d));
            assert_eq!(c.num_inputs(), i);
            assert_eq!(c.num_outputs(), o, "outputs for g={g}");
            assert_eq!(c.num_gates(), g);
            assert_eq!(c.stats().depth, d, "depth for g={g}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = GenSpec::new("t2", 10, 3, 60, 8);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = GenSpec::new("t3", 10, 3, 60, 8);
        let mut s2 = s1.clone();
        s1.seed = 1;
        s2.seed = 2;
        assert_ne!(generate(&s1), generate(&s2));
    }

    #[test]
    fn no_dead_logic() {
        let c = generate(&GenSpec::new("t4", 16, 8, 200, 15));
        for id in c.gates() {
            if !c.is_output(id) {
                assert!(
                    !c.node(id).fanout.is_empty(),
                    "gate {} dangles",
                    c.node(id).name
                );
            }
        }
        for &i in c.inputs() {
            assert!(
                !c.node(i).fanout.is_empty(),
                "input {} unused",
                c.node(i).name
            );
        }
    }

    #[test]
    fn simulable() {
        let c = generate(&GenSpec::new("t5", 8, 4, 50, 7));
        let v = c.simulate(&[true; 8]);
        assert_eq!(v.len(), c.num_nodes());
    }

    #[test]
    fn large_circuit_generates_quickly() {
        let c = generate(&GenSpec::new("t6", 200, 100, 3500, 43));
        assert_eq!(c.num_gates(), 3500);
        assert_eq!(c.stats().depth, 43);
    }

    #[test]
    #[should_panic(expected = "need at least one gate per level")]
    fn rejects_too_few_gates() {
        let _ = generate(&GenSpec::new("bad", 4, 2, 5, 10));
    }
}
