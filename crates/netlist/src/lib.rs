//! Gate-level combinational netlist substrate for the `statleak` workspace.
//!
//! Provides:
//!
//! * [`Circuit`] — an immutable-after-build combinational DAG with typed
//!   [`NodeId`]s, levelization, and structural statistics;
//! * [`GateKind`] — the ISCAS85 gate alphabet (NAND/NOR/AND/OR/NOT/XOR/
//!   XNOR/BUFF plus primary inputs);
//! * [`mod@bench`] — parser and writer for the ISCAS85 `.bench` format
//!   (including the ISCAS89 `DFF` cut);
//! * [`verilog`] — reader/writer for primitive-only structural Verilog;
//! * [`benchmarks`] — the ISCAS85-class benchmark suite: the genuine `c17`
//!   plus deterministic generated circuits matching the published gate
//!   counts and logic depths of c432…c7552 (see `DESIGN.md` §5 for why the
//!   generator is a faithful substitution);
//! * [`placement`] — a deterministic die placement used by the
//!   spatial-correlation model.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::benchmarks;
//!
//! let c17 = benchmarks::c17();
//! assert_eq!(c17.num_inputs(), 5);
//! assert_eq!(c17.num_gates(), 6);
//! assert_eq!(c17.num_outputs(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod benchmarks;
mod circuit;
pub mod generate;
pub mod placement;
pub mod verilog;

pub use circuit::{
    BuildError, Circuit, CircuitBuilder, CircuitStats, ConeScratch, GateKind, Node, NodeId,
};
