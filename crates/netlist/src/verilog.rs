//! Structural gate-level Verilog reader and writer.
//!
//! ISCAS85 circuits are commonly distributed as primitive-only structural
//! Verilog alongside the `.bench` format. This module supports that
//! subset:
//!
//! ```text
//! module c17 (N1, N2, N3, N6, N7, N22, N23);
//!   input  N1, N2, N3, N6, N7;
//!   output N22, N23;
//!   wire   N10, N11, N16, N19;
//!   nand g0 (N10, N1, N3);   // output port first, like Verilog primitives
//!   ...
//! endmodule
//! ```
//!
//! Supported statements: `module`/`endmodule`, `input`, `output`, `wire`
//! declarations (comma lists), the gate primitives `and`, `nand`, `or`,
//! `nor`, `xor`, `xnor`, `not`, `buf`, and `assign lhs = rhs;` (treated as
//! a buffer). Comments (`//` and `/* */`) are stripped.

use crate::circuit::{BuildError, Circuit, CircuitBuilder, GateKind};
use std::collections::HashSet;
use std::fmt;

/// Errors produced while parsing structural Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseVerilogError {
    /// No `module` header found.
    MissingModule,
    /// A statement could not be parsed.
    Syntax {
        /// The offending statement text (truncated).
        statement: String,
    },
    /// An unsupported primitive or statement keyword.
    Unsupported {
        /// The unrecognized keyword.
        keyword: String,
    },
    /// The netlist was syntactically fine but structurally invalid.
    Build(BuildError),
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseVerilogError::MissingModule => write!(f, "no `module` header found"),
            ParseVerilogError::Syntax { statement } => {
                write!(f, "cannot parse statement `{statement}`")
            }
            ParseVerilogError::Unsupported { keyword } => {
                write!(f, "unsupported construct `{keyword}`")
            }
            ParseVerilogError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseVerilogError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseVerilogError {
    fn from(e: BuildError) -> Self {
        ParseVerilogError::Build(e)
    }
}

fn primitive_keyword(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Input => unreachable!("inputs are not primitives"),
        GateKind::Buff => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Nand => "nand",
        GateKind::Or => "or",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
    }
}

fn primitive_kind(kw: &str) -> Option<GateKind> {
    Some(match kw {
        "buf" => GateKind::Buff,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "nand" => GateKind::Nand,
        "or" => GateKind::Or,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        _ => return None,
    })
}

/// Strips `//` line comments and `/* */` block comments.
fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for d in chars.by_ref() {
                        if d == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let mut prev = ' ';
                    for d in chars.by_ref() {
                        if prev == '*' && d == '/' {
                            break;
                        }
                        prev = d;
                    }
                    out.push(' ');
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a single structural-Verilog module into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on unsupported constructs, syntax
/// problems, or structural netlist errors.
///
/// ```
/// let src = "module tiny (a, b, y);
///   input a, b; output y;
///   nand g0 (y, a, b);
/// endmodule";
/// let c = statleak_netlist::verilog::parse(src)?;
/// assert_eq!(c.name(), "tiny");
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), statleak_netlist::verilog::ParseVerilogError>(())
/// ```
pub fn parse(src: &str) -> Result<Circuit, ParseVerilogError> {
    let text = strip_comments(src);
    // Statements are `;`-separated; `endmodule` has no semicolon.
    let mut name = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<(String, GateKind, Vec<String>)> = Vec::new();

    for raw in text.split(';') {
        let stmt = raw.trim().trim_end_matches("endmodule").trim();
        if stmt.is_empty() {
            continue;
        }
        let mut words = stmt.split_whitespace();
        let keyword = words.next().unwrap_or_default();
        let rest = stmt[keyword.len()..].trim();
        match keyword {
            "module" => {
                let head = rest.split('(').next().unwrap_or("").trim();
                if head.is_empty() {
                    return Err(ParseVerilogError::Syntax {
                        statement: truncate(stmt),
                    });
                }
                name = Some(head.to_string());
                // The port list itself carries no direction info; skip it.
            }
            "input" => inputs.extend(split_names(rest)),
            "output" => outputs.extend(split_names(rest)),
            "wire" => { /* declarations only; connectivity is from gates */ }
            "assign" => {
                // assign lhs = rhs;  → buffer.
                let Some((lhs, rhs)) = rest.split_once('=') else {
                    return Err(ParseVerilogError::Syntax {
                        statement: truncate(stmt),
                    });
                };
                gates.push((
                    lhs.trim().to_string(),
                    GateKind::Buff,
                    vec![rhs.trim().to_string()],
                ));
            }
            kw => {
                let Some(kind) = primitive_kind(kw) else {
                    return Err(ParseVerilogError::Unsupported {
                        keyword: kw.to_string(),
                    });
                };
                // `kind [instance_name] ( out, in... )`
                let open = rest.find('(').ok_or_else(|| ParseVerilogError::Syntax {
                    statement: truncate(stmt),
                })?;
                let close = rest.rfind(')').ok_or_else(|| ParseVerilogError::Syntax {
                    statement: truncate(stmt),
                })?;
                if close < open {
                    return Err(ParseVerilogError::Syntax {
                        statement: truncate(stmt),
                    });
                }
                let ports: Vec<String> = split_names(&rest[open + 1..close]);
                if ports.len() < 2 {
                    return Err(ParseVerilogError::Syntax {
                        statement: truncate(stmt),
                    });
                }
                // The instance name between the keyword and `(` is
                // optional in primitive instantiations and unused here.
                let out_net = ports[0].clone();
                gates.push((out_net, kind, ports[1..].to_vec()));
            }
        }
    }

    let name = name.ok_or(ParseVerilogError::MissingModule)?;
    let mut builder = CircuitBuilder::new(name);
    let declared_inputs: HashSet<&String> = inputs.iter().collect();
    for i in &inputs {
        builder.add_input(i.clone())?;
    }
    for (out, kind, ins) in &gates {
        if declared_inputs.contains(out) {
            return Err(ParseVerilogError::Build(BuildError::DuplicateName(
                out.clone(),
            )));
        }
        let refs: Vec<&str> = ins.iter().map(String::as_str).collect();
        builder.add_gate(out.clone(), *kind, &refs)?;
    }
    for o in &outputs {
        builder.mark_output(o.clone())?;
    }
    Ok(builder.build()?)
}

fn split_names(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

fn truncate(s: &str) -> String {
    let mut t: String = s.chars().take(60).collect();
    if s.chars().count() > 60 {
        t.push('…');
    }
    t
}

/// Serializes a [`Circuit`] as primitive-only structural Verilog.
///
/// The output round-trips through [`parse`] to a structurally identical
/// circuit.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let port_names: Vec<&str> = circuit
        .inputs()
        .iter()
        .chain(circuit.outputs())
        .map(|&id| circuit.name_of(id))
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        circuit.name(),
        port_names.join(", ")
    ));
    let list = |ids: &[crate::circuit::NodeId]| -> String {
        ids.iter()
            .map(|&id| circuit.name_of(id).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    out.push_str(&format!("  input {};\n", list(circuit.inputs())));
    out.push_str(&format!("  output {};\n", list(circuit.outputs())));
    let wires: Vec<String> = circuit
        .gates()
        .filter(|&g| !circuit.is_output(g))
        .map(|g| circuit.name_of(g).to_string())
        .collect();
    if !wires.is_empty() {
        out.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    for (i, id) in circuit.gates().enumerate() {
        let node = circuit.node(id);
        let mut ports = vec![node.name];
        ports.extend(node.fanin.iter().map(|f| circuit.name_of(*f)));
        out.push_str(&format!(
            "  {} g{} ({});\n",
            primitive_keyword(node.kind),
            i,
            ports.join(", ")
        ));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn writes_and_reparses_c17() {
        let c = benchmarks::c17();
        let v = write(&c);
        assert!(v.contains("module c17"));
        assert!(v.contains("nand"));
        let c2 = parse(&v).unwrap();
        assert_eq!(c.stats(), c2.stats());
    }

    #[test]
    fn round_trip_preserves_simulation() {
        let c = benchmarks::by_name("c432").unwrap();
        let c2 = parse(&write(&c)).unwrap();
        let inputs: Vec<bool> = (0..c.num_inputs()).map(|i| i % 2 == 0).collect();
        let v1 = c.simulate(&inputs);
        let v2 = c2.simulate(&inputs);
        for &o in c.outputs() {
            let name = &c.node(o).name;
            let o2 = c2.find(name).unwrap();
            assert_eq!(v1[o.index()], v2[o2.index()], "output {name}");
        }
    }

    #[test]
    fn parses_hand_written_module_with_comments() {
        let src = "
        // a tiny mux-ish thing
        module m (a, b, s, y);
          input a, b, s; /* three inputs */
          output y;
          wire na, t1, t2;
          not  i0 (na, s);
          and  i1 (t1, a, na);
          and  i2 (t2, b, s);
          or   i3 (y, t1, t2);
        endmodule";
        let c = parse(src).unwrap();
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_gates(), 4);
        // Behaves like a mux: y = s ? b : a.
        for (a, b, s) in [
            (true, false, false),
            (false, true, true),
            (true, true, false),
        ] {
            let v = c.simulate(&[a, b, s]);
            let y = c.find("y").unwrap();
            assert_eq!(v[y.index()], if s { b } else { a });
        }
    }

    #[test]
    fn assign_becomes_buffer() {
        let src = "module t (a, y); input a; output y; assign y = a; endmodule";
        let c = parse(src).unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(c.node(y).kind, GateKind::Buff);
    }

    #[test]
    fn instance_names_are_optional() {
        let src = "module t (a, b, y); input a, b; output y; nand (y, a, b); endmodule";
        let c = parse(src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn unsupported_keyword_reported() {
        let src = "module t (a, y); input a; output y; always @(a) y = a; endmodule";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, ParseVerilogError::Unsupported { .. }));
    }

    #[test]
    fn missing_module_reported() {
        assert_eq!(parse("input a;"), Err(ParseVerilogError::MissingModule));
    }

    #[test]
    fn redefined_input_rejected() {
        let src = "module t (a, y); input a; output y; buf g (a, y); endmodule";
        assert!(matches!(
            parse(src),
            Err(ParseVerilogError::Build(BuildError::DuplicateName(_)))
        ));
    }

    #[test]
    fn generated_suite_round_trips() {
        for name in ["c499", "c880"] {
            let c = benchmarks::by_name(name).unwrap();
            let c2 = parse(&write(&c)).unwrap();
            assert_eq!(c.stats(), c2.stats(), "{name}");
        }
    }
}
