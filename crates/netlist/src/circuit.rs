//! The combinational circuit DAG.

use std::collections::HashMap;
use std::fmt;

/// Index of a node (primary input or gate) inside a [`Circuit`].
///
/// Node ids are dense: `0..circuit.num_nodes()`. They index directly into
/// the per-node vectors kept by the analysis crates (arrival times, sizes,
/// threshold assignments, …), which is why the whole workspace uses plain
/// `Vec<T>` keyed by `NodeId` instead of hash maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The gate alphabet of the ISCAS85 benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// A primary input (no fanin).
    Input,
    /// Single-input buffer.
    Buff,
    /// Single-input inverter.
    Not,
    /// Multi-input AND.
    And,
    /// Multi-input NAND.
    Nand,
    /// Multi-input OR.
    Or,
    /// Multi-input NOR.
    Nor,
    /// Two-or-more-input XOR.
    Xor,
    /// Two-or-more-input XNOR.
    Xnor,
}

impl GateKind {
    /// All logic-gate kinds (excluding [`GateKind::Input`]).
    pub const LOGIC_KINDS: [GateKind; 8] = [
        GateKind::Buff,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// `true` if the node is a logic gate (has fanin).
    #[inline]
    pub fn is_gate(self) -> bool {
        !matches!(self, GateKind::Input)
    }

    /// The `.bench` keyword for this kind (upper case).
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Buff => "BUFF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive).
    pub fn from_bench_keyword(kw: &str) -> Option<GateKind> {
        Some(match kw.to_ascii_uppercase().as_str() {
            "BUFF" | "BUF" => GateKind::Buff,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            _ => return None,
        })
    }

    /// Evaluates the boolean function on the fanin values.
    ///
    /// # Panics
    ///
    /// Panics if called on [`GateKind::Input`] or with an empty input slice.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(self.is_gate(), "cannot evaluate a primary input as a gate");
        assert!(!inputs.is_empty(), "gate must have at least one fanin");
        match self {
            GateKind::Input => unreachable!(),
            GateKind::Buff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |a, &b| a ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |a, &b| a ^ b),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// A borrowed view of one node: a primary input or a logic gate.
///
/// The circuit stores node attributes struct-of-arrays (parallel vectors
/// plus CSR adjacency) so the timing hot loops stream contiguous memory;
/// this view reassembles the familiar per-node shape on demand for the
/// cold paths. It is `Copy` — take it by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node<'a> {
    /// Human-readable signal name (unique within the circuit).
    pub name: &'a str,
    /// The node's function.
    pub kind: GateKind,
    /// Driver nodes, in `.bench` argument order. Empty for inputs.
    pub fanin: &'a [NodeId],
    /// Nodes driven by this node (computed at build time).
    pub fanout: &'a [NodeId],
}

/// Structural statistics of a circuit, as reported in benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (nodes that are not primary inputs).
    pub gates: usize,
    /// Logic depth: the longest input→output path counted in gates.
    pub depth: usize,
}

/// Errors produced while building a [`Circuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two nodes were declared with the same name.
    DuplicateName(String),
    /// A fanin referenced a name that was never declared.
    UnknownSignal(String),
    /// A gate was declared with no fanin.
    MissingFanin(String),
    /// A primary output referenced an undeclared signal.
    UnknownOutput(String),
    /// The netlist contains a combinational cycle through the named node.
    Cycle(String),
    /// The circuit has no primary outputs.
    NoOutputs,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
            BuildError::UnknownSignal(n) => write!(f, "fanin references unknown signal `{n}`"),
            BuildError::MissingFanin(n) => write!(f, "gate `{n}` has no fanin"),
            BuildError::UnknownOutput(n) => write!(f, "output references unknown signal `{n}`"),
            BuildError::Cycle(n) => write!(f, "combinational cycle through `{n}`"),
            BuildError::NoOutputs => write!(f, "circuit has no primary outputs"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`Circuit`].
///
/// ```
/// use statleak_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("demo");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::Nand, &["a", "b"])?;
/// b.mark_output("y")?;
/// let c = b.build()?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), statleak_netlist::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<(String, GateKind, Vec<String>)>,
    outputs: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl CircuitBuilder {
    /// Starts building a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`] if the name is already used.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<(), BuildError> {
        let name = name.into();
        self.declare(name.clone(), GateKind::Input, Vec::new())
    }

    /// Declares a logic gate driven by the named signals.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateName`] if the name is already used, or
    /// [`BuildError::MissingFanin`] if `fanin` is empty.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[&str],
    ) -> Result<(), BuildError> {
        let name = name.into();
        if fanin.is_empty() {
            return Err(BuildError::MissingFanin(name));
        }
        self.declare(name, kind, fanin.iter().map(|s| s.to_string()).collect())
    }

    /// Marks a declared signal as a primary output.
    ///
    /// Output marks may be issued before the signal is declared; existence
    /// is checked at [`CircuitBuilder::build`] time.
    pub fn mark_output(&mut self, name: impl Into<String>) -> Result<(), BuildError> {
        self.outputs.push(name.into());
        Ok(())
    }

    fn declare(
        &mut self,
        name: String,
        kind: GateKind,
        fanin: Vec<String>,
    ) -> Result<(), BuildError> {
        if self.by_name.contains_key(&name) {
            return Err(BuildError::DuplicateName(name));
        }
        self.by_name.insert(name.clone(), self.nodes.len());
        self.nodes.push((name, kind, fanin));
        Ok(())
    }

    /// Finalizes the circuit: resolves names, checks acyclicity, computes
    /// fanout lists and the topological order.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] on dangling references, cycles, or missing
    /// outputs.
    pub fn build(self) -> Result<Circuit, BuildError> {
        let CircuitBuilder {
            name: circuit_name,
            nodes: decls,
            outputs: output_names,
            by_name,
        } = self;
        let n = decls.len();
        let mut names = Vec::with_capacity(n);
        let mut kinds = Vec::with_capacity(n);
        // Fanin adjacency in CSR form: row `i` is
        // `fanin_dat[fanin_off[i]..fanin_off[i+1]]`, in `.bench` argument
        // order.
        let mut fanin_off = Vec::with_capacity(n + 1);
        fanin_off.push(0u32);
        let mut fanin_dat: Vec<NodeId> = Vec::new();
        for (node_name, kind, fanin_names) in decls {
            for f in &fanin_names {
                let idx = by_name
                    .get(f)
                    .ok_or_else(|| BuildError::UnknownSignal(f.clone()))?;
                fanin_dat.push(NodeId(*idx as u32));
            }
            fanin_off.push(fanin_dat.len() as u32);
            names.push(node_name);
            kinds.push(kind);
        }
        let fanin_row = |off: &[u32], i: usize| -> std::ops::Range<usize> {
            off[i] as usize..off[i + 1] as usize
        };
        // Fanout adjacency via counting sort: consumers appear in
        // (consumer id, fanin position) order — the same order the old
        // per-node push construction produced.
        let mut fanout_off = vec![0u32; n + 1];
        for f in &fanin_dat {
            fanout_off[f.index() + 1] += 1;
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        let mut fanout_dat = vec![NodeId(0); fanin_dat.len()];
        for i in 0..n {
            for k in fanin_row(&fanin_off, i) {
                let f = fanin_dat[k];
                fanout_dat[cursor[f.index()] as usize] = NodeId(i as u32);
                cursor[f.index()] += 1;
            }
        }
        // Outputs.
        if output_names.is_empty() {
            return Err(BuildError::NoOutputs);
        }
        let mut outputs = Vec::with_capacity(output_names.len());
        for o in &output_names {
            let idx = by_name
                .get(o)
                .ok_or_else(|| BuildError::UnknownOutput(o.clone()))?;
            outputs.push(NodeId(*idx as u32));
        }
        // Kahn topological sort (also detects cycles).
        let mut indeg: Vec<u32> = (0..n).map(|i| fanin_off[i + 1] - fanin_off[i]).collect();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            let row = fanout_off[u.index()] as usize..fanout_off[u.index() + 1] as usize;
            for &v in &fanout_dat[row] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            let culprit = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| names[i].clone())
                .unwrap_or_default();
            return Err(BuildError::Cycle(culprit));
        }
        // Levels (longest path from any input, inputs at level 0).
        let mut level = vec![0u32; n];
        for &u in &topo {
            let lvl = fanin_row(&fanin_off, u.index())
                .map(|k| level[fanin_dat[k].index()] + 1)
                .max()
                .unwrap_or(0);
            level[u.index()] = lvl;
        }
        // Level blocks: the topological order bucketed by level, so the
        // parallel propagator can fan out one level at a time. Within a
        // level, nodes keep their topo-order relative ranks.
        let depth = level.iter().copied().max().unwrap_or(0) as usize;
        let mut level_start = vec![0u32; depth + 2];
        for &l in &level {
            level_start[l as usize + 1] += 1;
        }
        for l in 0..=depth {
            level_start[l + 1] += level_start[l];
        }
        let mut level_cursor: Vec<u32> = level_start[..=depth].to_vec();
        let mut level_order = vec![NodeId(0); n];
        for &id in &topo {
            let l = level[id.index()] as usize;
            level_order[level_cursor[l] as usize] = id;
            level_cursor[l] += 1;
        }
        let inputs: Vec<NodeId> = (0..n)
            .filter(|&i| kinds[i] == GateKind::Input)
            .map(|i| NodeId(i as u32))
            .collect();
        // Inverse permutation of `topo`: rank of each node in the order.
        let mut topo_rank = vec![0u32; n];
        for (r, &id) in topo.iter().enumerate() {
            topo_rank[id.index()] = r as u32;
        }
        let mut output_mask = vec![false; n];
        for &o in &outputs {
            output_mask[o.index()] = true;
        }
        let by_name = by_name.into_iter().map(|(k, v)| (k, v as u32)).collect();
        Ok(Circuit {
            name: circuit_name,
            names,
            kinds,
            fanin_off,
            fanin_dat,
            fanout_off,
            fanout_dat,
            by_name,
            inputs,
            outputs,
            topo,
            topo_rank,
            level,
            level_start,
            level_order,
            output_mask,
        })
    }
}

/// An immutable combinational circuit DAG.
///
/// Constructed via [`CircuitBuilder`] (or the [`crate::bench`] parser /
/// [`crate::generate`] generator). All derived structures — fanouts,
/// topological order, levels, level blocks — are precomputed at build time.
///
/// Storage is struct-of-arrays: per-node attributes live in parallel
/// vectors and the fanin/fanout adjacency in CSR offset+index arrays, so
/// million-gate propagation streams contiguous memory instead of chasing
/// per-node heap allocations. [`Circuit::node`] reassembles a borrowed
/// [`Node`] view for call sites that want the per-node shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    names: Vec<String>,
    kinds: Vec<GateKind>,
    fanin_off: Vec<u32>,
    fanin_dat: Vec<NodeId>,
    fanout_off: Vec<u32>,
    fanout_dat: Vec<NodeId>,
    by_name: HashMap<String, u32>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    topo: Vec<NodeId>,
    topo_rank: Vec<u32>,
    level: Vec<u32>,
    /// Offsets into `level_order`: level `l` spans
    /// `level_order[level_start[l]..level_start[l+1]]`.
    level_start: Vec<u32>,
    /// The topological order bucketed by level (topo-stable within a
    /// level).
    level_order: Vec<NodeId>,
    output_mask: Vec<bool>,
}

impl Circuit {
    /// The circuit's name (e.g. `"c432"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count (inputs + gates).
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates.
    pub fn num_gates(&self) -> usize {
        self.names.len() - self.inputs.len()
    }

    /// A borrowed view of the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of bounds.
    pub fn node(&self, id: NodeId) -> Node<'_> {
        Node {
            name: self.name_of(id),
            kind: self.kind(id),
            fanin: self.fanin(id),
            fanout: self.fanout(id),
        }
    }

    /// The node's function.
    #[inline]
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.kinds[id.index()]
    }

    /// The node's signal name.
    #[inline]
    pub fn name_of(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Driver nodes, in `.bench` argument order. Empty for inputs.
    #[inline]
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        &self.fanin_dat
            [self.fanin_off[id.index()] as usize..self.fanin_off[id.index() + 1] as usize]
    }

    /// Nodes driven by this node.
    #[inline]
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        &self.fanout_dat
            [self.fanout_off[id.index()] as usize..self.fanout_off[id.index() + 1] as usize]
    }

    /// All node ids, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Primary input ids.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output ids.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Nodes in topological order (inputs first).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Nodes in reverse topological order (outputs first).
    pub fn reverse_topo(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo.iter().rev().copied()
    }

    /// The level (longest distance from a primary input) of each node.
    pub fn level(&self, id: NodeId) -> usize {
        self.level[id.index()] as usize
    }

    /// The logic depth: the maximum level over all nodes. Level 0 holds
    /// exactly the primary inputs; every level ≥ 1 holds only gates.
    pub fn depth(&self) -> usize {
        self.level_start.len() - 2
    }

    /// The nodes of one level block, topo-stable. Every fanin of a node at
    /// level `l` sits at a level `< l`, so the nodes within a block can be
    /// evaluated in any order (or in parallel) once all earlier blocks are
    /// done.
    pub fn level_nodes(&self, lvl: usize) -> &[NodeId] {
        &self.level_order[self.level_start[lvl] as usize..self.level_start[lvl + 1] as usize]
    }

    /// Iterator over gate ids (skipping primary inputs) in topological
    /// order.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topo
            .iter()
            .copied()
            .filter(move |&id| self.kinds[id.index()].is_gate())
    }

    /// Looks up a node by name. O(1): answered from the name index built
    /// at construction time.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).map(|&i| NodeId(i))
    }

    /// Whether the node is a primary output. O(1): answered from a
    /// membership mask built at construction time.
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_mask[id.index()]
    }

    /// The rank of a node in the topological order (the inverse of
    /// [`Circuit::topo_order`]). Sorting a node set by this key puts it in
    /// valid evaluation order without scanning the whole circuit.
    #[inline]
    pub fn topo_rank(&self, id: NodeId) -> u32 {
        self.topo_rank[id.index()]
    }

    /// Structural statistics (as reported in benchmark tables).
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            gates: self.num_gates(),
            depth: self.depth(),
        }
    }

    /// Simulates the circuit on a primary-input assignment, returning the
    /// value of every node.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != num_inputs()`.
    pub fn simulate(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "expected {} input values",
            self.inputs.len()
        );
        let mut value = vec![false; self.num_nodes()];
        for (i, &id) in self.inputs.iter().enumerate() {
            value[id.index()] = input_values[i];
        }
        let mut buf = Vec::new();
        for &id in &self.topo {
            let kind = self.kinds[id.index()];
            if kind == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(self.fanin(id).iter().map(|f| value[f.index()]));
            value[id.index()] = kind.eval(&buf);
        }
        value
    }

    /// The transitive fanout cone of a node (including the node itself),
    /// in topological order. Used for incremental timing updates.
    ///
    /// Convenience wrapper that allocates a fresh [`ConeScratch`] per call;
    /// hot loops should hold a scratch and use
    /// [`Circuit::collect_fanout_cone`] instead.
    pub fn fanout_cone(&self, root: NodeId) -> Vec<NodeId> {
        let mut scratch = ConeScratch::new();
        self.collect_fanout_cone(&[root], &mut scratch);
        scratch.cone().to_vec()
    }

    /// Collects the union of the transitive fanout cones of `seeds`
    /// (including the seeds themselves) into `scratch`, sorted
    /// topologically. Touches only cone nodes plus their immediate fanout
    /// edges — O(k log k) for a k-node cone — instead of scanning the full
    /// circuit, and reuses the scratch's buffers so steady-state calls do
    /// not allocate.
    pub fn collect_fanout_cone(&self, seeds: &[NodeId], scratch: &mut ConeScratch) {
        scratch.begin(self.num_nodes());
        for &s in seeds {
            scratch.push_if_new(s);
        }
        // DFS over fanout edges; `cone` doubles as the visit stack because
        // every discovered node is part of the result.
        let mut head = 0;
        while head < scratch.cone.len() {
            let u = scratch.cone[head];
            head += 1;
            for &v in self.fanout(u) {
                scratch.push_if_new(v);
            }
        }
        let ranks = &self.topo_rank;
        scratch.cone.sort_unstable_by_key(|id| ranks[id.index()]);
    }
}

/// Reusable scratch space for fanout-cone collection.
///
/// Visited marks are epoch-stamped: `stamp[i] == epoch` means node `i` is
/// in the current cone, and bumping the epoch invalidates every mark at
/// once, so repeated collections never clear (or reallocate) the
/// full-circuit array. One scratch serves circuits of any size — the stamp
/// vector grows to the largest circuit seen and sticks there.
#[derive(Debug, Clone, Default)]
pub struct ConeScratch {
    stamp: Vec<u32>,
    epoch: u32,
    cone: Vec<NodeId>,
}

impl ConeScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The most recently collected cone, in topological order.
    pub fn cone(&self) -> &[NodeId] {
        &self.cone
    }

    fn begin(&mut self, num_nodes: usize) {
        if self.stamp.len() < num_nodes {
            self.stamp.resize(num_nodes, 0);
        }
        // On wrap-around, stale stamps could alias the new epoch; clearing
        // once every u32::MAX collections keeps correctness without a
        // per-call cost.
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.cone.clear();
    }

    fn push_if_new(&mut self, id: NodeId) {
        if self.stamp[id.index()] != self.epoch {
            self.stamp[id.index()] = self.epoch;
            self.cone.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Circuit {
        let mut b = CircuitBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("g1", GateKind::Nand, &["a", "b"]).unwrap();
        b.add_gate("g2", GateKind::Not, &["g1"]).unwrap();
        b.mark_output("g2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_counts_and_levels() {
        let c = small();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.stats().depth, 2);
        let g2 = c.find("g2").unwrap();
        assert_eq!(c.level(g2), 2);
    }

    #[test]
    fn fanout_computed() {
        let c = small();
        let a = c.find("a").unwrap();
        let g1 = c.find("g1").unwrap();
        assert_eq!(c.node(a).fanout, &[g1]);
        assert_eq!(c.fanout(a), &[g1]);
    }

    #[test]
    fn level_blocks_partition_topo_order() {
        let c = small();
        // Level blocks must cover every node exactly once, in ascending
        // level, topo-stable within a block; level 0 is exactly the inputs.
        let mut seen = Vec::new();
        for lvl in 0..=c.depth() {
            for &id in c.level_nodes(lvl) {
                assert_eq!(c.level(id), lvl);
                seen.push(id);
            }
        }
        assert_eq!(seen.len(), c.num_nodes());
        assert_eq!(c.level_nodes(0), c.inputs());
        for lvl in 1..=c.depth() {
            for &id in c.level_nodes(lvl) {
                assert!(c.kind(id).is_gate());
                for &f in c.fanin(id) {
                    assert!(c.level(f) < lvl);
                }
            }
        }
    }

    #[test]
    fn simulate_nand_not() {
        let c = small();
        let g2 = c.find("g2").unwrap();
        // g2 = NOT(NAND(a,b)) = AND(a,b)
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = c.simulate(&[a, b]);
            assert_eq!(v[g2.index()], a && b, "a={a} b={b}");
        }
    }

    #[test]
    fn topo_respects_edges() {
        let c = small();
        let pos: Vec<usize> = {
            let mut p = vec![0; c.num_nodes()];
            for (i, &id) in c.topo_order().iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for id in c.gates() {
            for &f in c.fanin(id) {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut b = CircuitBuilder::new("cyc");
        b.add_input("a").unwrap();
        b.add_gate("x", GateKind::And, &["a", "y"]).unwrap();
        b.add_gate("y", GateKind::Not, &["x"]).unwrap();
        b.mark_output("y").unwrap();
        assert!(matches!(b.build(), Err(BuildError::Cycle(_))));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = CircuitBuilder::new("d");
        b.add_input("a").unwrap();
        assert_eq!(b.add_input("a"), Err(BuildError::DuplicateName("a".into())));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut b = CircuitBuilder::new("u");
        b.add_input("a").unwrap();
        b.add_gate("g", GateKind::Not, &["zzz"]).unwrap();
        b.mark_output("g").unwrap();
        assert!(matches!(b.build(), Err(BuildError::UnknownSignal(_))));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = CircuitBuilder::new("n");
        b.add_input("a").unwrap();
        assert!(matches!(b.build(), Err(BuildError::NoOutputs)));
    }

    #[test]
    fn fanout_cone_includes_reachable() {
        let c = small();
        let a = c.find("a").unwrap();
        let cone = c.fanout_cone(a);
        assert_eq!(cone.len(), 3); // a, g1, g2
    }

    #[test]
    fn topo_rank_is_inverse_of_topo_order() {
        let c = small();
        for (r, &id) in c.topo_order().iter().enumerate() {
            assert_eq!(c.topo_rank(id) as usize, r);
        }
    }

    #[test]
    fn output_mask_matches_output_list() {
        let c = small();
        for id in (0..c.num_nodes()).map(|i| NodeId(i as u32)) {
            assert_eq!(c.is_output(id), c.outputs().contains(&id));
        }
    }

    #[test]
    fn scratch_cone_matches_full_scan_and_reuses_buffers() {
        let c = small();
        let mut scratch = ConeScratch::new();
        for &id in c.topo_order() {
            // Reference: mark + full topo scan (the pre-scratch algorithm).
            let mut in_cone = vec![false; c.num_nodes()];
            in_cone[id.index()] = true;
            let mut expected = Vec::new();
            for &t in c.topo_order() {
                if in_cone[t.index()] {
                    expected.push(t);
                    for &f in c.fanout(t) {
                        in_cone[f.index()] = true;
                    }
                }
            }
            c.collect_fanout_cone(&[id], &mut scratch);
            assert_eq!(scratch.cone(), expected.as_slice(), "root {id}");
        }
    }

    #[test]
    fn scratch_cone_multi_seed_union() {
        let c = small();
        let a = c.find("a").unwrap();
        let b = c.find("b").unwrap();
        let mut scratch = ConeScratch::new();
        c.collect_fanout_cone(&[a, b], &mut scratch);
        // Union of both cones: a, b, g1, g2 — each exactly once.
        assert_eq!(scratch.cone().len(), 4);
        for w in scratch.cone().windows(2) {
            assert!(c.topo_rank(w[0]) < c.topo_rank(w[1]));
        }
    }

    #[test]
    fn gate_eval_truth_tables() {
        use GateKind::*;
        assert!(And.eval(&[true, true]));
        assert!(!And.eval(&[true, false]));
        assert!(!Nand.eval(&[true, true]));
        assert!(Or.eval(&[false, true]));
        assert!(!Nor.eval(&[false, true]));
        assert!(Nor.eval(&[false, false]));
        assert!(Xor.eval(&[true, false]));
        assert!(!Xor.eval(&[true, true]));
        assert!(Xnor.eval(&[true, true]));
        assert!(Not.eval(&[false]));
        assert!(Buff.eval(&[true]));
        // 3-input parity.
        assert!(Xor.eval(&[true, true, true]));
    }

    #[test]
    fn bench_keyword_round_trip() {
        for k in GateKind::LOGIC_KINDS {
            assert_eq!(GateKind::from_bench_keyword(k.bench_keyword()), Some(k));
        }
        assert_eq!(GateKind::from_bench_keyword("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::from_bench_keyword("FLIPFLOP"), None);
    }
}
