//! ISCAS85 `.bench` format parser and writer.
//!
//! The `.bench` grammar (as distributed with the ISCAS85/89 suites):
//!
//! ```text
//! # comment
//! INPUT(name)
//! OUTPUT(name)
//! name = GATE(arg1, arg2, ...)
//! ```
//!
//! `OUTPUT` lines may precede the definition of the signal they reference.
//!
//! ISCAS89-style `name = DFF(d)` statements are supported by cutting the
//! netlist at the flip-flop: the FF output becomes a pseudo primary input
//! of the combinational core and the FF data input a pseudo primary
//! output — the standard transformation for combinational timing and
//! leakage analysis of sequential benchmarks.

use crate::circuit::{BuildError, Circuit, CircuitBuilder, GateKind};
use std::fmt;

/// Errors produced while parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be parsed; carries the 1-based line number and text.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown gate keyword; carries line number and keyword.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The unrecognized keyword.
        keyword: String,
    },
    /// The netlist was syntactically fine but structurally invalid.
    Build(BuildError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, text } => {
                write!(f, "syntax error on line {line}: `{text}`")
            }
            ParseBenchError::UnknownGate { line, keyword } => {
                write!(f, "unknown gate `{keyword}` on line {line}")
            }
            ParseBenchError::Build(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for ParseBenchError {
    fn from(e: BuildError) -> Self {
        ParseBenchError::Build(e)
    }
}

/// Parses ISCAS85 `.bench` text into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate keywords,
/// or structural problems (cycles, dangling references).
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(c)
/// c = AND(a, b)
/// ";
/// let c = statleak_netlist::bench::parse("ha", src)?;
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), statleak_netlist::bench::ParseBenchError>(())
/// ```
pub fn parse(name: &str, src: &str) -> Result<Circuit, ParseBenchError> {
    parse_with_dff_count(name, src).map(|(c, _)| c)
}

/// Like [`parse`], additionally reporting how many `DFF` elements were cut
/// (ISCAS89-style sequential netlists; see the DFF note in the grammar).
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_with_dff_count(name: &str, src: &str) -> Result<(Circuit, usize), ParseBenchError> {
    let mut b = CircuitBuilder::new(name);
    let mut outputs = Vec::new();
    let mut dff_count = 0usize;
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if text.is_empty() {
            continue;
        }
        let upper = text.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            let inner =
                extract_parens(rest, text, "INPUT").ok_or_else(|| ParseBenchError::Syntax {
                    line,
                    text: text.to_string(),
                })?;
            b.add_input(inner)?;
        } else if let Some(rest) = upper.strip_prefix("OUTPUT") {
            let inner =
                extract_parens(rest, text, "OUTPUT").ok_or_else(|| ParseBenchError::Syntax {
                    line,
                    text: text.to_string(),
                })?;
            outputs.push(inner.to_string());
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim();
            let rhs = text[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| ParseBenchError::Syntax {
                line,
                text: text.to_string(),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| ParseBenchError::Syntax {
                line,
                text: text.to_string(),
            })?;
            if close < open || lhs.is_empty() {
                return Err(ParseBenchError::Syntax {
                    line,
                    text: text.to_string(),
                });
            }
            let keyword = rhs[..open].trim();
            if keyword.eq_ignore_ascii_case("DFF") {
                // ISCAS89 sequential element: cut the netlist at the
                // flip-flop. Its Q output behaves as a pseudo primary
                // input of the combinational core (valid at t = 0) and its
                // D input must settle before the clock edge, i.e. it is a
                // pseudo primary output.
                let arg = rhs[open + 1..close].trim();
                if arg.is_empty() {
                    return Err(ParseBenchError::Syntax {
                        line,
                        text: text.to_string(),
                    });
                }
                b.add_input(lhs)?;
                outputs.push(arg.to_string());
                dff_count += 1;
                continue;
            }
            let kind = GateKind::from_bench_keyword(keyword).ok_or_else(|| {
                ParseBenchError::UnknownGate {
                    line,
                    keyword: keyword.to_string(),
                }
            })?;
            let args: Vec<&str> = rhs[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if args.is_empty() {
                return Err(ParseBenchError::Syntax {
                    line,
                    text: text.to_string(),
                });
            }
            b.add_gate(lhs, kind, &args)?;
        } else {
            return Err(ParseBenchError::Syntax {
                line,
                text: text.to_string(),
            });
        }
    }
    for o in outputs {
        b.mark_output(o)?;
    }
    Ok((b.build()?, dff_count))
}

/// Extracts the text between the parens of `KEYWORD(inner)`, given the
/// uppercased remainder after the keyword and the original line.
fn extract_parens<'a>(rest_upper: &str, original: &'a str, keyword: &str) -> Option<&'a str> {
    if !rest_upper.trim_start().starts_with('(') {
        return None;
    }
    let after = &original[keyword.len()..];
    let open = after.find('(')?;
    let close = after.rfind(')')?;
    if close <= open {
        return None;
    }
    let inner = after[open + 1..close].trim();
    (!inner.is_empty()).then_some(inner)
}

/// Serializes a [`Circuit`] back to `.bench` text.
///
/// The output round-trips through [`parse`] to a structurally identical
/// circuit.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_gates()
    ));
    for &i in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.node(i).name));
    }
    for &o in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.node(o).name));
    }
    for id in circuit.gates() {
        let node = circuit.node(id);
        let args: Vec<&str> = node.fanin.iter().map(|f| circuit.name_of(*f)).collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            node.name,
            node.kind.bench_keyword(),
            args.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = include_str!("c17.bench");

    #[test]
    fn parses_c17() {
        let c = parse("c17", C17).unwrap();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 6);
        assert!(c.gates().all(|g| c.node(g).kind == GateKind::Nand));
    }

    #[test]
    fn c17_truth_sample() {
        // With all inputs 0, every first-level NAND outputs 1.
        let c = parse("c17", C17).unwrap();
        let v = c.simulate(&[false; 5]);
        for &o in c.outputs() {
            // Outputs are NAND of (1, x) stages; just check simulation runs
            // and yields a boolean deterministic value.
            let _ = v[o.index()];
        }
        // Known vector: all inputs = 1 makes G10=NAND(1,1)=0, G11=NAND(1,1)=0,
        // G16=NAND(1,G11)=NAND(1,0)=1, G19=NAND(G11,1)=1,
        // G22=NAND(G10,G16)=NAND(0,1)=1, G23=NAND(G16,G19)=NAND(1,1)=0.
        let v = c.simulate(&[true; 5]);
        let g22 = c.find("G22").unwrap();
        let g23 = c.find("G23").unwrap();
        assert!(v[g22.index()]);
        assert!(!v[g23.index()]);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = parse("c17", C17).unwrap();
        let text = write(&c);
        let c2 = parse("c17", &text).unwrap();
        assert_eq!(c.stats(), c2.stats());
        // Same names and kinds.
        for id in c.gates() {
            let n = c.node(id);
            let id2 = c2.find(n.name).unwrap();
            assert_eq!(c2.node(id2).kind, n.kind);
            assert_eq!(c2.node(id2).fanin.len(), n.fanin.len());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse(
            "t",
            "# hi\n\nINPUT(a) # trailing comment\nOUTPUT(y)\ny = NOT(a)\n",
        )
        .unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn output_before_definition_ok() {
        let c = parse("t", "OUTPUT(y)\nINPUT(a)\ny = BUFF(a)\n").unwrap();
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn unknown_gate_reported_with_line() {
        let e = parse("t", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n").unwrap_err();
        match e {
            ParseBenchError::UnknownGate { line, keyword } => {
                assert_eq!(line, 2);
                assert_eq!(keyword, "FROB");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn syntax_error_reported() {
        let e = parse("t", "INPUT a\n").unwrap_err();
        assert!(matches!(e, ParseBenchError::Syntax { line: 1, .. }));
    }

    #[test]
    fn empty_arglist_rejected() {
        let e = parse("t", "INPUT(a)\ny = AND()\nOUTPUT(y)\n").unwrap_err();
        assert!(matches!(e, ParseBenchError::Syntax { line: 2, .. }));
    }

    #[test]
    fn case_insensitive_keywords() {
        let c = parse("t", "input(a)\noutput(y)\ny = nand(a, a)\n").unwrap();
        assert_eq!(c.num_gates(), 1);
    }
}

#[cfg(test)]
mod dff_tests {
    use super::*;

    /// A miniature ISCAS89-style sequential netlist (s27 topology spirit).
    const SEQ: &str = "
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G14 = NOT(G0)
G8 = AND(G14, G6)
G10 = NOR(G8, G1)
G11 = NOR(G5, G2)
G17 = NOT(G11)
";

    #[test]
    fn dff_cut_creates_pseudo_io() {
        let (c, dffs) = parse_with_dff_count("seq", SEQ).unwrap();
        assert_eq!(dffs, 2);
        // 3 real + 2 pseudo inputs.
        assert_eq!(c.num_inputs(), 5);
        // 1 real + 2 pseudo outputs.
        assert_eq!(c.num_outputs(), 3);
        // FF outputs exist as inputs.
        let g5 = c.find("G5").unwrap();
        assert!(!c.node(g5).kind.is_gate());
        // FF data inputs are outputs of the core.
        let g10 = c.find("G10").unwrap();
        assert!(c.is_output(g10));
        // The cut netlist is acyclic and analyzable.
        assert!(c.stats().depth >= 2);
    }

    #[test]
    fn plain_parse_accepts_dff_too() {
        let c = parse("seq", SEQ).unwrap();
        assert_eq!(c.num_inputs(), 5);
    }

    #[test]
    fn dff_without_arg_rejected() {
        let e = parse("bad", "INPUT(a)\nq = DFF()\nOUTPUT(q)\n").unwrap_err();
        assert!(matches!(e, ParseBenchError::Syntax { .. }));
    }

    #[test]
    fn sequential_loop_through_dff_is_fine() {
        // Combinational loop through a DFF must NOT be reported as a cycle
        // because the cut breaks it.
        let src = "
INPUT(a)
OUTPUT(y)
q = DFF(y)
y = NAND(a, q)
";
        let c = parse("loop", src).unwrap();
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_gates(), 1);
    }
}
