//! Parser-rejection corpus: malformed `.bench` and structural-Verilog
//! inputs must come back as typed errors — never panics, never silently
//! mis-parsed netlists. Each case pins the error variant so a regression
//! in diagnostics (e.g. a cycle reported as a syntax error) is caught.

use statleak_netlist::bench::{self, ParseBenchError};
use statleak_netlist::verilog::{self, ParseVerilogError};
use statleak_netlist::BuildError;

// ---------------------------------------------------------------- .bench --

#[test]
fn bench_rejects_garbage_line_with_line_number() {
    let src = "INPUT(a)\nthis is not a bench line\n";
    match bench::parse("t", src) {
        Err(ParseBenchError::Syntax { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn bench_rejects_unknown_gate_keyword() {
    let src = "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
    match bench::parse("t", src) {
        Err(ParseBenchError::UnknownGate { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected UnknownGate, got {other:?}"),
    }
}

#[test]
fn bench_rejects_fanin_to_undeclared_signal() {
    let src = "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n";
    assert!(matches!(
        bench::parse("t", src),
        Err(ParseBenchError::Build(BuildError::UnknownSignal(_)))
    ));
}

#[test]
fn bench_rejects_duplicate_signal_names() {
    let src = "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
    assert!(matches!(
        bench::parse("t", src),
        Err(ParseBenchError::Build(BuildError::DuplicateName(_)))
    ));
}

#[test]
fn bench_rejects_combinational_cycle() {
    let src = "INPUT(a)\nOUTPUT(y)\nx = NAND(a, y)\ny = NAND(a, x)\n";
    assert!(matches!(
        bench::parse("t", src),
        Err(ParseBenchError::Build(BuildError::Cycle(_)))
    ));
}

#[test]
fn bench_rejects_netlist_without_outputs() {
    let src = "INPUT(a)\nx = NOT(a)\n";
    assert!(matches!(
        bench::parse("t", src),
        Err(ParseBenchError::Build(BuildError::NoOutputs))
    ));
}

#[test]
fn bench_rejects_empty_input() {
    assert!(bench::parse("t", "").is_err());
}

#[test]
fn bench_rejects_unbalanced_parens() {
    assert!(bench::parse("t", "INPUT(a\n").is_err());
}

#[test]
fn bench_errors_render_line_numbers() {
    let err = bench::parse("t", "INPUT(a)\n???\n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('2'), "{msg}");
}

// --------------------------------------------------------------- verilog --

#[test]
fn verilog_rejects_missing_module_header() {
    assert!(matches!(
        verilog::parse("wire x;\n"),
        Err(ParseVerilogError::MissingModule)
    ));
}

#[test]
fn verilog_rejects_unsupported_primitive() {
    let src = "module t (a, y);\ninput a;\noutput y;\nxnor3 g1 (y, a, a, a);\nendmodule\n";
    match verilog::parse(src) {
        Err(ParseVerilogError::Unsupported { keyword }) => {
            assert_eq!(keyword, "xnor3");
        }
        Err(ParseVerilogError::Syntax { .. }) => {} // also acceptable: typed, not a panic
        other => panic!("expected rejection, got {other:?}"),
    }
}

#[test]
fn verilog_rejects_garbage_statement() {
    let src = "module t (a, y);\ninput a;\noutput y;\n%%%;\nendmodule\n";
    assert!(verilog::parse(src).is_err());
}

#[test]
fn verilog_rejects_undeclared_fanin() {
    let src = "module t (a, y);\ninput a;\noutput y;\nnand g1 (y, a, ghost);\nendmodule\n";
    assert!(matches!(
        verilog::parse(src),
        Err(ParseVerilogError::Build(BuildError::UnknownSignal(_)))
    ));
}

#[test]
fn verilog_rejects_empty_input() {
    assert!(verilog::parse("").is_err());
}

#[test]
fn verilog_errors_are_displayable_and_sourced() {
    // Every rejection renders a human-readable message (used verbatim by
    // the CLI's `parse error:` output).
    for src in ["", "module t (y);\noutput y;\nfrob g (y);\nendmodule\n"] {
        if let Err(e) = verilog::parse(src) {
            assert!(!e.to_string().is_empty());
        } else {
            panic!("corpus entry unexpectedly parsed: {src:?}");
        }
    }
}
