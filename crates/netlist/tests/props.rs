//! Property-based tests for the netlist substrate.

use proptest::prelude::*;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::{bench, GateKind};

/// A strategy for structurally valid generator specs.
fn specs() -> impl Strategy<Value = GenSpec> {
    (2usize..40, 2usize..80, 2usize..12, 0u64..1000).prop_flat_map(
        |(inputs, extra_gates, depth, seed)| {
            let gates = depth + extra_gates;
            (1usize..=gates.min(20)).prop_map(move |outputs| {
                let mut s = GenSpec::new(
                    format!("p{inputs}_{gates}_{depth}_{seed}"),
                    inputs,
                    outputs,
                    gates,
                    depth,
                );
                s.seed = seed;
                s
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_circuits_match_spec(spec in specs()) {
        let c = generate(&spec);
        prop_assert_eq!(c.num_inputs(), spec.inputs);
        prop_assert_eq!(c.num_gates(), spec.gates);
        prop_assert_eq!(c.num_outputs(), spec.outputs);
        prop_assert_eq!(c.stats().depth, spec.depth);
    }

    #[test]
    fn generated_circuits_have_no_dead_logic(spec in specs()) {
        let c = generate(&spec);
        for id in c.gates() {
            if !c.is_output(id) {
                prop_assert!(!c.node(id).fanout.is_empty(), "dangling gate");
            }
        }
        for &i in c.inputs() {
            prop_assert!(!c.node(i).fanout.is_empty(), "unused input");
        }
    }

    #[test]
    fn topo_order_respects_edges(spec in specs()) {
        let c = generate(&spec);
        let mut pos = vec![0usize; c.num_nodes()];
        for (i, &id) in c.topo_order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in c.gates() {
            for &f in c.node(id).fanin {
                prop_assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn levels_are_longest_paths(spec in specs()) {
        let c = generate(&spec);
        for id in c.gates() {
            let expected = c
                .node(id)
                .fanin
                .iter()
                .map(|f| c.level(*f) + 1)
                .max()
                .unwrap();
            prop_assert_eq!(c.level(id), expected);
        }
    }

    #[test]
    fn bench_round_trip_preserves_structure(spec in specs()) {
        let c = generate(&spec);
        let text = bench::write(&c);
        let c2 = bench::parse(c.name(), &text).expect("own output parses");
        prop_assert_eq!(c.stats(), c2.stats());
        // Same simulation behaviour on a few vectors.
        for pattern in 0..4u32 {
            let inputs: Vec<bool> = (0..c.num_inputs())
                .map(|i| (pattern >> (i % 32)) & 1 == 1)
                .collect();
            let v1 = c.simulate(&inputs);
            let v2 = c2.simulate(&inputs);
            for &o in c.outputs() {
                let name = &c.node(o).name;
                let o2 = c2.find(name).expect("output exists");
                prop_assert_eq!(v1[o.index()], v2[o2.index()], "output {}", name);
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(spec in specs(), pattern in any::<u64>()) {
        let c = generate(&spec);
        let inputs: Vec<bool> = (0..c.num_inputs())
            .map(|i| (pattern >> (i % 64)) & 1 == 1)
            .collect();
        prop_assert_eq!(c.simulate(&inputs), c.simulate(&inputs));
    }

    #[test]
    fn gate_eval_involution_for_complement_pairs(
        inputs in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        // NAND = !AND, NOR = !OR, XNOR = !XOR.
        prop_assert_eq!(
            GateKind::Nand.eval(&inputs),
            !GateKind::And.eval(&inputs)
        );
        prop_assert_eq!(GateKind::Nor.eval(&inputs), !GateKind::Or.eval(&inputs));
        prop_assert_eq!(
            GateKind::Xnor.eval(&inputs),
            !GateKind::Xor.eval(&inputs)
        );
    }
}
