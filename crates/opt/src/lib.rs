//! Leakage-power optimizers: the reproduction's core contribution.
//!
//! Three engines, mirroring the DAC 2004 experimental setup:
//!
//! 1. [`sizing`] — TILOS-style greedy sizing used to build the starting
//!    point: an all-low-Vth design sized to meet the delay target (and to
//!    estimate the minimum achievable delay `Dmin`);
//! 2. [`DeterministicOptimizer`] — the *comparison baseline*: greedy
//!    dual-Vth assignment plus downsizing validated against **nominal**
//!    STA slack (à la Wei/Roy and Pant et al.), optionally guard-banded;
//! 3. [`StatisticalOptimizer`] — the paper's contribution: the same move
//!    set validated against a **timing-yield** constraint from SSTA, with
//!    the objective being a statistical leakage measure (95th percentile
//!    or mean of the full-chip lognormal).
//!
//! Both optimizers use incremental cone updates with undo, so a candidate
//! move costs time proportional to its fanout cone.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::{benchmarks, placement::Placement};
//! use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
//! use statleak_opt::{sizing, DeterministicOptimizer};
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(benchmarks::by_name("c432").expect("known"));
//! let tech = Technology::ptm100();
//! let mut design = Design::new(circuit, tech);
//! let dmin = sizing::size_for_min_delay(&mut design);
//! let t_clk = 1.10 * dmin;
//! sizing::size_for_delay(&mut design, t_clk)?;
//! let report = DeterministicOptimizer::new(t_clk).optimize(&mut design);
//! assert!(report.final_nominal_leakage < report.initial_nominal_leakage);
//! # Ok::<(), statleak_opt::SizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deterministic;
pub mod lr_sizing;
pub mod sizing;
mod statistical;

pub use deterministic::{
    deterministic_for_yield, DetReport, DetYieldOutcome, DeterministicOptimizer,
};
pub use lr_sizing::{size_lagrangian, LrConfig, LrReport};
pub use sizing::SizeError;
pub use statistical::{
    statistical_flow, statistical_for_yield, Objective, StatReport, StatYieldOutcome,
    StatisticalOptimizer, TracePoint,
};

use rayon::prelude::*;
use statleak_netlist::NodeId;
use statleak_tech::{Design, VthClass};

/// Nominal delay penalty of swapping gate `g` from its current Vth flavor
/// to `target`, at its current size and load (ps).
pub(crate) fn vth_penalty_to(design: &Design, g: NodeId, target: VthClass) -> f64 {
    let node = design.circuit().node(g);
    let c_load = design.load_cap(g);
    let d_new =
        design
            .library()
            .delay_nominal(node.kind, node.fanin.len(), design.size(g), target, c_load);
    let d_cur = design.library().delay_nominal(
        node.kind,
        node.fanin.len(),
        design.size(g),
        design.vth(g),
        c_load,
    );
    d_new - d_cur
}

/// Nominal delay penalty of the classic low→high swap.
pub(crate) fn vth_penalty(design: &Design, g: NodeId) -> f64 {
    vth_penalty_to(design, g, VthClass::High)
}

/// Ranks low-Vth candidates for the high-Vth swap, TILOS-style: moves whose
/// slack covers the delay penalty ("free" moves) come first ordered by
/// leakage saving, then constrained moves ordered by saving per unit of
/// slack shortfall. `slack_of` and `leak_of` are the analysis-specific
/// slack and leakage measures.
/// Scoring is read-only per candidate and fans out on rayon; the ordered
/// collect plus the serial **stable** sort keep the final ranking
/// bit-identical to fully-serial scoring for any thread count.
pub(crate) fn rank_vth_candidates_by(
    candidates: &mut Vec<NodeId>,
    penalty_of: impl Fn(NodeId) -> f64 + Sync,
    slack_of: impl Fn(NodeId) -> f64 + Sync,
    leak_of: impl Fn(NodeId) -> f64 + Sync,
) {
    let mut scored: Vec<(NodeId, bool, f64)> = candidates
        .par_iter()
        .map(|&g| {
            let penalty = penalty_of(g);
            let slack = slack_of(g);
            let saving = leak_of(g);
            if slack >= penalty {
                (g, true, saving)
            } else {
                (g, false, saving / (penalty - slack).max(1e-9))
            }
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.total_cmp(&a.2)));
    *candidates = scored.into_iter().map(|(g, _, _)| g).collect();
}

/// Ranks low-Vth candidates for the classic low→high swap.
pub(crate) fn rank_vth_candidates(
    design: &Design,
    candidates: &mut Vec<NodeId>,
    slack_of: impl Fn(NodeId) -> f64 + Sync,
    leak_of: impl Fn(NodeId) -> f64 + Sync,
) {
    rank_vth_candidates_by(candidates, |g| vth_penalty(design, g), slack_of, leak_of);
}

/// Seed set for an incremental timing update after changing gate `g`:
/// the gate itself plus, if its input capacitance changed (resize), its
/// fanin drivers whose load changed.
pub(crate) fn seeds_for_change(design: &Design, g: NodeId, size_changed: bool) -> Vec<NodeId> {
    let mut seeds = vec![g];
    if size_changed {
        seeds.extend(
            design
                .circuit()
                .node(g)
                .fanin
                .iter()
                .copied()
                .filter(|f| design.circuit().node(*f).kind.is_gate()),
        );
    }
    seeds
}
