//! The statistical dual-Vth + sizing optimizer — the paper's contribution.
//!
//! Identical move set to the deterministic baseline (low→high Vth swaps
//! and downsizing), but:
//!
//! * **feasibility** is a parametric timing-yield constraint
//!   `P(D ≤ T_clk) ≥ η` evaluated by incremental SSTA, instead of a
//!   nominal slack test;
//! * the **objective** is a statistical measure of the full-chip leakage
//!   lognormal — the 95th percentile by default — maintained incrementally
//!   by [`statleak_leakage::LeakageAnalysis`].
//!
//! Because timing is treated as a distribution, the optimizer can spend
//! *statistical* slack that the deterministic corner view cannot see
//! (paths that are nominally critical but rarely so under variation), and
//! it refuses moves that look safe nominally but crater the yield. Both
//! effects push the result to strictly better leakage at equal yield.

use crate::seeds_for_change;
use rayon::prelude::*;
use statleak_leakage::LeakageAnalysis;
use statleak_netlist::NodeId;
use statleak_obs as obs;
use statleak_ssta::Ssta;
use statleak_tech::{Design, FactorModel, VthClass};

/// A trajectory snapshot event is emitted every this many accepted moves
/// (when tracing is enabled).
const TRAJECTORY_EVERY: usize = 64;

/// The statistical leakage objective to minimize.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Minimize the 95th percentile of total leakage (the paper's choice:
    /// protects the sellable-parts leakage spec).
    #[default]
    P95,
    /// Minimize the mean of total leakage.
    Mean,
    /// Minimize an arbitrary quantile of total leakage (e.g. `0.99` for a
    /// stricter leakage spec). Must lie strictly inside `(0, 1)`.
    Quantile(f64),
    /// Minimize p95 leakage **plus** dynamic switching power for the given
    /// average activity factor and clock frequency (GHz). Makes the
    /// downsizing pass weigh switched capacitance, not just leakage.
    TotalPower {
        /// Average switching activity factor.
        activity: f64,
        /// Clock frequency in GHz.
        f_ghz: f64,
    },
}

/// One point of the optimizer convergence trace (figure F5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Accepted-move index (0 = initial state).
    pub accepted_moves: usize,
    /// Objective value (W) after this move.
    pub objective: f64,
    /// Timing yield after this move.
    pub timing_yield: f64,
}

/// Statistical optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StatisticalOptimizer {
    /// Clock period to honor (ps).
    pub t_clk: f64,
    /// Timing-yield floor `η`: every accepted move keeps
    /// `P(D ≤ t_clk) ≥ η`.
    pub yield_target: f64,
    /// Objective to minimize.
    pub objective: Objective,
    /// Maximum improvement passes.
    pub max_passes: usize,
    /// The Vth ladder, ascending: each pass tries to promote every gate to
    /// the next rung. `[Low, High]` is the paper's dual-Vth setup;
    /// `[Low, Mid, High]` enables the triple-Vth extension.
    pub vth_levels: Vec<VthClass>,
}

/// Outcome of a statistical optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct StatReport {
    /// Objective (W) before optimization.
    pub initial_objective: f64,
    /// Objective (W) after optimization.
    pub final_objective: f64,
    /// Mean total leakage power (W) after optimization.
    pub final_mean_leakage: f64,
    /// Timing yield at `t_clk` before optimization.
    pub initial_yield: f64,
    /// Timing yield at `t_clk` after optimization.
    pub final_yield: f64,
    /// Gates moved to high Vth.
    pub high_vth_gates: usize,
    /// Accepted downsizing moves.
    pub downsized_gates: usize,
    /// Passes actually run.
    pub passes: usize,
    /// Convergence trace (one point per accepted move, plus the start).
    pub trace: Vec<TracePoint>,
}

impl StatisticalOptimizer {
    /// Creates an optimizer for a clock period and a 99 % yield floor.
    pub fn new(t_clk: f64) -> Self {
        Self {
            t_clk,
            yield_target: 0.99,
            objective: Objective::P95,
            max_passes: 8,
            vth_levels: vec![VthClass::Low, VthClass::High],
        }
    }

    /// Enables the triple-Vth ladder `[Low, Mid, High]` — the "more Vth
    /// flavors" extension of the dual-Vth formulation.
    pub fn with_triple_vth(mut self) -> Self {
        self.vth_levels = vec![VthClass::Low, VthClass::Mid, VthClass::High];
        self
    }

    /// The next rung of the ladder above a gate's current flavor, if any.
    fn next_level(&self, current: VthClass) -> Option<VthClass> {
        let pos = self.vth_levels.iter().position(|&c| c == current)?;
        self.vth_levels.get(pos + 1).copied()
    }

    /// Sets the yield floor.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not strictly inside `(0, 1)`.
    pub fn with_yield_target(mut self, eta: f64) -> Self {
        assert!(eta > 0.0 && eta < 1.0, "yield target must be in (0,1)");
        self.yield_target = eta;
        self
    }

    /// Sets the objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    fn objective_value(&self, design: &Design, leak: &LeakageAnalysis) -> f64 {
        let power = leak.total_power(design);
        match self.objective {
            Objective::P95 => power.quantile(0.95),
            Objective::Mean => power.mean(),
            Objective::Quantile(p) => power.quantile(p),
            Objective::TotalPower { activity, f_ghz } => {
                power.quantile(0.95) + design.dynamic_power(activity, f_ghz)
            }
        }
    }

    /// Runs the optimization, mutating the design in place.
    ///
    /// The effective yield floor is `min(yield_target, initial_yield)`:
    /// if the starting design already yields less than the target, the
    /// optimizer preserves (never degrades) the starting yield instead of
    /// failing. The report carries both yields so callers can see which
    /// floor was active.
    pub fn optimize(&self, design: &mut Design, fm: &FactorModel) -> StatReport {
        let _span = obs::span!("opt.optimize");
        let mut ssta = Ssta::analyze(design, fm);
        let mut leak = LeakageAnalysis::analyze(design, fm);

        let initial_yield = ssta.timing_yield(self.t_clk);
        let floor = self.yield_target.min(initial_yield) - 1e-12;
        let initial_objective = self.objective_value(design, &leak);

        let mut trace = vec![TracePoint {
            accepted_moves: 0,
            objective: initial_objective,
            timing_yield: initial_yield,
        }];
        let mut accepted_total = 0usize;
        let mut downsized = 0usize;
        let mut passes = 0usize;
        // Per-move telemetry is accumulated in locals and flushed to the
        // global counters once per optimize() call, so the move loop
        // stays free of atomic traffic.
        let mut tried = 0u64;
        let mut vth_swaps = 0u64;
        let trajectory = |trace: &[TracePoint], accepted_total: usize| {
            if obs::enabled() && accepted_total.is_multiple_of(TRAJECTORY_EVERY) {
                let p = trace.last().expect("trace has the move just accepted");
                obs::event(
                    "opt.trajectory",
                    &[
                        ("accepted_moves", p.accepted_moves as f64),
                        ("objective", p.objective),
                        ("timing_yield", p.timing_yield),
                    ],
                );
            }
        };

        for _ in 0..self.max_passes {
            passes += 1;
            let mut accepted = 0usize;

            // --- Vth pass: statistically-slack-covered moves first (by
            // mean leakage), then constrained moves by saving-per-
            // shortfall. Statistical slack uses the mean backward pass
            // against the yield-equivalent clock. ---
            let _vth_span = obs::span!("opt.vth_pass");
            let t_eff = self.t_clk
                - (ssta.clock_for_yield(floor.clamp(1e-9, 1.0 - 1e-9)) - ssta.circuit_delay().mean);
            let slacks = ssta.mean_slack(design, t_eff, 0.0);
            let mut candidates: Vec<NodeId> = design
                .circuit()
                .gates()
                .filter(|&g| self.next_level(design.vth(g)).is_some())
                .collect();
            crate::rank_vth_candidates_by(
                &mut candidates,
                |g| {
                    let target = self
                        .next_level(design.vth(g))
                        .expect("candidates have a next rung");
                    crate::vth_penalty_to(design, g, target)
                },
                |g| slacks[g.index()],
                |g| leak.gate_mean_current(g),
            );
            for g in candidates {
                let current = design.vth(g);
                // Try the rungs above the current one, highest (leanest)
                // first, and keep the first that preserves the yield floor
                // — so a gate that can afford High is never parked at Mid.
                let cur_pos = self
                    .vth_levels
                    .iter()
                    .position(|&c| c == current)
                    .expect("candidates are on the ladder");
                for target in self.vth_levels[cur_pos + 1..].iter().rev().copied() {
                    design.set_vth(g, target);
                    tried += 1;
                    let t_undo =
                        ssta.recompute_cone(design, fm, &seeds_for_change(design, g, false));
                    if ssta.timing_yield(self.t_clk) >= floor {
                        leak.update_gate(design, fm, g);
                        accepted += 1;
                        accepted_total += 1;
                        vth_swaps += 1;
                        trace.push(TracePoint {
                            accepted_moves: accepted_total,
                            objective: self.objective_value(design, &leak),
                            timing_yield: ssta.timing_yield(self.t_clk),
                        });
                        trajectory(&trace, accepted_total);
                        break;
                    }
                    ssta.undo(t_undo);
                    design.set_vth(g, current);
                }
            }
            drop(_vth_span);

            // --- Downsizing pass. ---
            let _down_span = obs::span!("opt.downsize_pass");
            let mut sized: Vec<NodeId> = design
                .circuit()
                .gates()
                .filter(|&g| design.size(g) > 1.0)
                .collect();
            sized.sort_by(|&a, &b| design.size(b).total_cmp(&design.size(a)));
            for g in sized {
                let old = design.size(g);
                let Some(down) = design.size_down(old) else {
                    continue;
                };
                design.set_size(g, down);
                tried += 1;
                let t_undo = ssta.recompute_cone(design, fm, &seeds_for_change(design, g, true));
                if ssta.timing_yield(self.t_clk) >= floor {
                    leak.update_gate(design, fm, g);
                    accepted += 1;
                    accepted_total += 1;
                    downsized += 1;
                    trace.push(TracePoint {
                        accepted_moves: accepted_total,
                        objective: self.objective_value(design, &leak),
                        timing_yield: ssta.timing_yield(self.t_clk),
                    });
                    trajectory(&trace, accepted_total);
                } else {
                    ssta.undo(t_undo);
                    design.set_size(g, old);
                }
            }

            if accepted == 0 {
                break;
            }
        }

        obs::counter!("opt_moves_tried_total").add(tried);
        obs::counter!("opt_moves_accepted_total").add(accepted_total as u64);
        obs::counter!("opt_moves_rejected_total").add(tried - accepted_total as u64);
        obs::counter!("opt_vth_swaps_total").add(vth_swaps);
        obs::counter!("opt_downsizes_total").add(downsized as u64);
        obs::counter!("opt_passes_total").add(passes as u64);

        StatReport {
            initial_objective,
            final_objective: self.objective_value(design, &leak),
            final_mean_leakage: leak.total_power(design).mean(),
            initial_yield,
            final_yield: ssta.timing_yield(self.t_clk),
            high_vth_gates: design.high_vth_count(),
            downsized_gates: downsized,
            passes,
            trace,
        }
    }
}

/// Result of the full statistical flow ([`statistical_for_yield`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StatYieldOutcome {
    /// The optimized design.
    pub design: Design,
    /// The inner report of the winning run.
    pub report: StatReport,
    /// The initial-sizing margin (in sigma above the yield target) that
    /// won the sweep.
    pub sizing_margin_sigma: f64,
}

/// The complete statistical flow: size for a yield target with a sweep of
/// initial margins (the statistical analog of the deterministic flow's
/// guard-band search — oversizing buys statistical slack that converts
/// into extra high-Vth assignments), run the yield-constrained optimizer
/// on each, and keep the lowest objective.
///
/// # Errors
///
/// Returns [`crate::SizeError`] if even the plain yield target cannot be
/// sized to.
pub fn statistical_for_yield(
    base: &Design,
    fm: &FactorModel,
    t_clk: f64,
    eta: f64,
) -> Result<StatYieldOutcome, crate::SizeError> {
    statistical_flow(
        base,
        fm,
        &StatisticalOptimizer::new(t_clk).with_yield_target(eta),
    )
}

/// Like [`statistical_for_yield`], but with a caller-configured optimizer
/// prototype (objective, Vth ladder, pass budget). The prototype's
/// `t_clk` and `yield_target` define the constraint.
///
/// # Errors
///
/// Returns [`crate::SizeError`] if even the plain yield target cannot be
/// sized to.
pub fn statistical_flow(
    base: &Design,
    fm: &FactorModel,
    proto: &StatisticalOptimizer,
) -> Result<StatYieldOutcome, crate::SizeError> {
    let _span = obs::span!("opt.statistical_flow");
    let t_clk = proto.t_clk;
    let eta = proto.yield_target;
    let z_eta = statleak_stats::phi_inv(eta);
    // The seven margin points are independent end-to-end runs (each clones
    // the base design), so they fan out on rayon. Results come back in
    // margin order and the winner is picked by a serial fold with the same
    // strict-< / earliest-margin tie-breaking as the historical loop, so
    // the outcome is bit-identical for any thread count.
    let margins: Vec<f64> = vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let runs: Vec<(f64, Result<StatYieldOutcome, crate::SizeError>)> = margins
        .into_par_iter()
        .map(|margin| {
            let eta_sized = statleak_stats::phi(z_eta + margin).min(1.0 - 1e-9);
            let mut d = base.clone();
            let run = crate::sizing::size_for_yield(&mut d, fm, t_clk, eta_sized).map(|_| {
                let report = proto.clone().optimize(&mut d, fm);
                StatYieldOutcome {
                    design: d,
                    report,
                    sizing_margin_sigma: margin,
                }
            });
            (margin, run)
        })
        .collect();
    let mut best: Option<StatYieldOutcome> = None;
    let mut first_err = None;
    for (margin, run) in runs {
        match run {
            Ok(outcome) => {
                let better = best
                    .as_ref()
                    .is_none_or(|b| outcome.report.final_objective < b.report.final_objective);
                if better {
                    best = Some(outcome);
                }
            }
            Err(e) => {
                if margin == 0.0 {
                    first_err = Some(e);
                }
            }
        }
    }
    match best {
        Some(b) => Ok(b),
        None => Err(first_err.unwrap_or(crate::SizeError {
            achieved: f64::INFINITY,
            target: t_clk,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str, slack_factor: f64) -> (Design, FactorModel, f64) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let mut d = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&d);
        let t = dmin * slack_factor;
        sizing::size_for_delay(&mut d, t).unwrap();
        (d, fm, t)
    }

    #[test]
    fn reduces_p95_and_preserves_yield() {
        let (mut d, fm, t) = setup("c432", 1.15);
        let opt = StatisticalOptimizer::new(t);
        let r = opt.optimize(&mut d, &fm);
        assert!(r.final_objective < r.initial_objective * 0.8);
        // Yield never degrades below the effective floor.
        assert!(r.final_yield >= r.initial_yield.min(opt.yield_target) - 1e-9);
        assert!(r.high_vth_gates > 0);
    }

    #[test]
    fn trace_is_monotone_decreasing() {
        let (mut d, fm, t) = setup("c499", 1.15);
        let r = StatisticalOptimizer::new(t).optimize(&mut d, &fm);
        assert!(r.trace.len() >= 2, "should accept at least one move");
        for w in r.trace.windows(2) {
            assert!(
                w[1].objective <= w[0].objective + 1e-12,
                "objective must never increase"
            );
        }
    }

    #[test]
    fn quantile_objective_orders_with_strictness() {
        // A stricter quantile objective reports a larger number but still
        // optimizes successfully.
        let (d0, fm, t) = setup("c432", 1.15);
        let mut d99 = d0.clone();
        let r99 = StatisticalOptimizer::new(t)
            .with_objective(Objective::Quantile(0.99))
            .optimize(&mut d99, &fm);
        assert!(r99.final_objective < r99.initial_objective);
        let mut d50 = d0.clone();
        let r50 = StatisticalOptimizer::new(t)
            .with_objective(Objective::Quantile(0.50))
            .optimize(&mut d50, &fm);
        assert!(r99.final_objective > r50.final_objective);
    }

    #[test]
    fn total_power_objective_includes_dynamic() {
        let (d0, fm, t) = setup("c432", 1.15);
        let mut d = d0.clone();
        let obj = Objective::TotalPower {
            activity: 0.1,
            f_ghz: 1.0,
        };
        let r = StatisticalOptimizer::new(t)
            .with_objective(obj)
            .optimize(&mut d, &fm);
        assert!(r.final_objective < r.initial_objective);
        // The objective includes the dynamic component.
        let leak_p95 = statleak_leakage::LeakageAnalysis::analyze(&d, &fm)
            .total_power(&d)
            .quantile(0.95);
        let dynamic = d.dynamic_power(0.1, 1.0);
        assert!((r.final_objective - (leak_p95 + dynamic)).abs() / r.final_objective < 1e-9);
        assert!(dynamic > 0.0);
    }

    #[test]
    fn mean_objective_also_works() {
        let (mut d, fm, t) = setup("c432", 1.15);
        let r = StatisticalOptimizer::new(t)
            .with_objective(Objective::Mean)
            .optimize(&mut d, &fm);
        assert!(r.final_objective < r.initial_objective);
    }

    #[test]
    fn stricter_yield_floor_saves_less() {
        let (d0, fm, t) = setup("c880", 1.12);
        let mut d_lo = d0.clone();
        let mut d_hi = d0.clone();
        let r_lo = StatisticalOptimizer::new(t)
            .with_yield_target(0.90)
            .optimize(&mut d_lo, &fm);
        let r_hi = StatisticalOptimizer::new(t)
            .with_yield_target(0.9999)
            .optimize(&mut d_hi, &fm);
        assert!(
            r_lo.final_objective <= r_hi.final_objective + 1e-15,
            "looser yield floor must allow at least as much saving: {} vs {}",
            r_lo.final_objective,
            r_hi.final_objective
        );
    }

    #[test]
    fn beats_deterministic_at_equal_yield() {
        // The paper's headline: at the SAME timing yield, the statistical
        // flow (size-for-yield + yield-constrained optimization) finds
        // lower p95 leakage than the best guard-banded deterministic flow.
        let eta = 0.95;
        let circuit = Arc::new(benchmarks::by_name("c880").unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let base = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&base);
        let t = dmin * 1.20;

        // Deterministic flow with its best possible guard band.
        let det = crate::deterministic_for_yield(&base, &fm, t, eta, 6).unwrap();
        assert!(
            det.achieved_yield >= eta,
            "det yield {}",
            det.achieved_yield
        );
        let p95_det = statleak_leakage::LeakageAnalysis::analyze(&det.design, &fm)
            .total_power(&det.design)
            .quantile(0.95);

        // Statistical flow at the same yield requirement.
        let out = statistical_for_yield(&base, &fm, t, eta).unwrap();
        let r = &out.report;

        assert!(r.final_yield >= eta - 1e-9, "stat yield {}", r.final_yield);
        assert!(
            r.final_objective < p95_det,
            "statistical p95 {} must beat deterministic {}",
            r.final_objective,
            p95_det
        );
    }

    #[test]
    fn flow_sweep_never_worse_than_single_shot() {
        let circuit = Arc::new(benchmarks::by_name("c432").unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let base = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&base);
        let t = dmin * 1.20;
        let eta = 0.95;

        let mut single = base.clone();
        sizing::size_for_yield(&mut single, &fm, t, eta).unwrap();
        let r_single = StatisticalOptimizer::new(t)
            .with_yield_target(eta)
            .optimize(&mut single, &fm);

        let swept = statistical_for_yield(&base, &fm, t, eta).unwrap();
        assert!(swept.report.final_objective <= r_single.final_objective + 1e-15);
    }

    #[test]
    fn parallel_sweep_matches_serial_bitwise() {
        // The margin sweep fans out on rayon; the ordered collect plus the
        // serial winner fold must make the outcome bit-identical to a
        // single-threaded run — whole-design assert_eq!, no tolerance.
        let circuit = Arc::new(benchmarks::by_name("c432").unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let base = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&base);
        let t = dmin * 1.20;
        let eta = 0.95;

        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool")
                .install(|| statistical_for_yield(&base, &fm, t, eta).unwrap())
        };
        let serial = run(1);
        let par4 = run(4);
        // 3 threads forces uneven chunks over the 7 margin points.
        let par3 = run(3);
        assert_eq!(serial.sizing_margin_sigma, par4.sizing_margin_sigma);
        assert_eq!(serial.report, par4.report);
        assert_eq!(serial.design, par4.design);
        assert_eq!(serial, par3);
    }

    #[test]
    fn deterministic_at_corner_loses_yield() {
        // The motivating observation: corner optimization with zero guard
        // band leaves the nominal path at the clock edge, so yield ≈ 50 %
        // or worse.
        let (d0, fm, t) = setup("c1355", 1.10);
        let mut d_det = d0.clone();
        crate::DeterministicOptimizer::new(t).optimize(&mut d_det);
        let y = statleak_ssta::Ssta::analyze(&d_det, &fm).timing_yield(t);
        assert!(y < 0.75, "corner-optimized yield should collapse, got {y}");
    }

    #[test]
    #[should_panic(expected = "yield target must be in (0,1)")]
    fn rejects_bad_yield_target() {
        let _ = StatisticalOptimizer::new(100.0).with_yield_target(1.0);
    }
}

#[cfg(test)]
mod triple_vth_tests {
    use super::*;
    use crate::sizing;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_tech::{Technology, VariationConfig, VthClass};
    use std::sync::Arc;

    fn base(name: &str) -> (Design, FactorModel, f64) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let d = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&d);
        (d, fm, dmin)
    }

    #[test]
    fn triple_vth_uses_mid_and_beats_dual() {
        let (d0, fm, dmin) = base("c880");
        let t = dmin * 1.12;
        let eta = 0.95;
        let dual = statistical_flow(
            &d0,
            &fm,
            &StatisticalOptimizer::new(t).with_yield_target(eta),
        )
        .unwrap();
        let triple = statistical_flow(
            &d0,
            &fm,
            &StatisticalOptimizer::new(t)
                .with_yield_target(eta)
                .with_triple_vth(),
        )
        .unwrap();
        assert!(
            triple.design.vth_count(VthClass::Mid) > 0,
            "mid flavor should be used on timing-constrained gates"
        );
        assert!(triple.report.final_yield >= eta - 1e-9);
        // The extra flavor never hurts (greedy noise bounded at 3%).
        assert!(
            triple.report.final_objective <= dual.report.final_objective * 1.03,
            "triple {} vs dual {}",
            triple.report.final_objective,
            dual.report.final_objective
        );
    }

    #[test]
    fn ladder_climbing_promotes_through_mid() {
        // With a very loose clock every gate should climb to High even via
        // the two-step ladder.
        let (mut d, fm, dmin) = base("c432");
        let t = dmin * 3.0;
        sizing::size_for_yield(&mut d, &fm, t, 0.99).unwrap();
        let r = StatisticalOptimizer::new(t)
            .with_yield_target(0.99)
            .with_triple_vth()
            .optimize(&mut d, &fm);
        let gates = d.circuit().num_gates();
        assert!(
            d.vth_count(VthClass::High) > gates * 8 / 10,
            "loose clock: most gates should reach High, got {}/{}",
            d.vth_count(VthClass::High),
            gates
        );
        assert!(r.final_yield >= 0.99 - 1e-9);
    }
}
