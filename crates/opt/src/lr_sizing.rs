//! Weight-driven (Lagrangian-relaxation-style) gate sizing.
//!
//! The TILOS greedy in [`crate::sizing`] upsizes one critical gate at a
//! time — robust but myopic. This module implements the classic
//! alternative: relax the timing constraints into per-gate weights
//! `Λ_i` (Lagrange-multiplier analogs), solve the *relaxed* problem by
//! cheap per-gate local optimization, and update the weights from the
//! resulting slacks (multiplicative subgradient step). Each local step
//! chooses the discrete size minimizing
//!
//! ```text
//! cost_i(w) = w  +  Λ_i · d_i(w)  +  Σ_{f ∈ fanin} Λ_f · d_f(load(w))
//! ```
//!
//! — its own width (the leakage/area proxy) plus weighted delay of itself
//! *and* of the drivers whose load it changes. Gates with violated slack
//! see their weights grow, pulling them (and their drivers) larger; gates
//! with excess slack see weights decay, releasing area.
//!
//! The result is guaranteed feasible: the best timing-feasible iterate is
//! kept, and if no iterate is feasible the greedy sizer repairs the final
//! state.

use crate::sizing::{size_for_delay, SizeError};
use statleak_netlist::NodeId;
use statleak_sta::Sta;
use statleak_tech::Design;

/// Configuration of the weight-driven sizer.
#[derive(Debug, Clone, PartialEq)]
pub struct LrConfig {
    /// Delay target (ps).
    pub t_clk: f64,
    /// Outer iterations (weight updates).
    pub iterations: usize,
    /// Subgradient step aggressiveness.
    pub kappa: f64,
}

impl LrConfig {
    /// Default configuration for a delay target.
    pub fn new(t_clk: f64) -> Self {
        Self {
            t_clk,
            iterations: 30,
            kappa: 2.0,
        }
    }
}

/// Outcome of a weight-driven sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct LrReport {
    /// Achieved circuit delay (ps).
    pub delay: f64,
    /// Total width of the result.
    pub width: f64,
    /// Whether the relaxation itself found a feasible iterate (false =
    /// the greedy repair pass was needed).
    pub converged: bool,
    /// Outer iterations executed.
    pub iterations: usize,
}

/// Local cost of giving gate `g` size `w`: own width + weighted own delay
/// + weighted delay of the fanin drivers whose load changes with `w`.
fn local_cost(design: &Design, weights: &[f64], g: NodeId, w: f64) -> f64 {
    let lib = design.library();
    let circuit = design.circuit();
    let node = circuit.node(g);
    // Own delay at size w with the current load.
    let d_own = lib.delay_nominal(
        node.kind,
        node.fanin.len(),
        w,
        design.vth(g),
        design.load_cap(g),
    );
    let mut cost = w + weights[g.index()] * d_own;
    // Effect of our input capacitance on each fanin driver.
    let delta_cap = lib.input_cap(node.kind, node.fanin.len(), w, design.vth(g))
        - lib.input_cap(node.kind, node.fanin.len(), design.size(g), design.vth(g));
    for &f in node.fanin {
        let fnode = circuit.node(f);
        if !fnode.kind.is_gate() {
            continue;
        }
        let d_f = lib.delay_nominal(
            fnode.kind,
            fnode.fanin.len(),
            design.size(f),
            design.vth(f),
            design.load_cap(f) + delta_cap,
        );
        cost += weights[f.index()] * d_f;
    }
    cost
}

/// Runs weight-driven sizing toward the delay target, mutating the design
/// in place. See the module docs for the algorithm.
///
/// # Errors
///
/// Returns [`SizeError`] if the target is unreachable even by the greedy
/// repair pass.
pub fn size_lagrangian(design: &mut Design, cfg: &LrConfig) -> Result<LrReport, SizeError> {
    let circuit = design.circuit_arc();
    let n = circuit.num_nodes();
    // Initial weights: uniform in units of 1/ps so Λ·d ≈ O(1) per gate.
    let mut weights = vec![1.0 / cfg.t_clk.max(1.0); n];
    let mut best: Option<(Design, f64, f64)> = None; // (design, delay, width)
    let mut iterations = 0usize;

    for _ in 0..cfg.iterations {
        iterations += 1;
        // --- Relaxed problem: coordinate pass in topological order. ---
        let gates: Vec<NodeId> = circuit.gates().collect();
        for &g in &gates {
            let mut best_w = design.size(g);
            let mut best_cost = local_cost(design, &weights, g, best_w);
            for &w in design.library().sizes() {
                if w == best_w {
                    continue;
                }
                let c = local_cost(design, &weights, g, w);
                if c < best_cost {
                    best_cost = c;
                    best_w = w;
                }
            }
            if best_w != design.size(g) {
                design.set_size(g, best_w);
            }
        }

        // --- Evaluate and update weights from slacks. ---
        let sta = Sta::analyze(design);
        let delay = sta.circuit_delay();
        if delay <= cfg.t_clk + 1e-9 {
            let width = design.total_width();
            if best.as_ref().is_none_or(|&(_, _, bw)| width < bw) {
                best = Some((design.clone(), delay, width));
            }
        }
        let slacks = sta.slacks(design, cfg.t_clk);
        let mut max_w: f64 = 0.0;
        for &g in &gates {
            let rel = -slacks.of(g) / cfg.t_clk; // >0 when violating
                                                 // Multiplicative update, capped per step for stability.
            let factor = (cfg.kappa * rel).clamp(-0.5, 1.0).exp();
            weights[g.index()] = (weights[g.index()] * factor).max(1e-12);
            max_w = max_w.max(weights[g.index()]);
        }
        // Renormalize to keep the width-vs-delay exchange rate stable.
        if max_w > 0.0 {
            let scale = (1.0 / cfg.t_clk) / (max_w / 10.0).max(1e-12);
            if !(0.5..=2.0).contains(&scale) {
                for w in &mut weights {
                    *w *= scale.clamp(0.01, 100.0);
                }
            }
        }
    }

    match best {
        Some((d, delay, width)) => {
            *design = d;
            Ok(LrReport {
                delay,
                width,
                converged: true,
                iterations,
            })
        }
        None => {
            // Repair: greedy sizing from the current (infeasible) state.
            let delay = size_for_delay(design, cfg.t_clk)?;
            Ok(LrReport {
                delay,
                width: design.total_width(),
                converged: false,
                iterations,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing;
    use statleak_netlist::benchmarks;
    use statleak_tech::Technology;
    use std::sync::Arc;

    fn design(name: &str) -> Design {
        Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        )
    }

    #[test]
    fn meets_target_on_c432() {
        let mut d = design("c432");
        let dmin = sizing::min_delay_estimate(&d);
        let t = dmin * 1.15;
        let r = size_lagrangian(&mut d, &LrConfig::new(t)).unwrap();
        assert!(r.delay <= t + 1e-9);
        assert!((Sta::analyze(&d).circuit_delay() - r.delay).abs() < 1e-9);
    }

    #[test]
    fn competitive_with_greedy_width() {
        for name in ["c432", "c880"] {
            let base = design(name);
            let dmin = sizing::min_delay_estimate(&base);
            let t = dmin * 1.15;
            let mut greedy = base.clone();
            sizing::size_for_delay(&mut greedy, t).unwrap();
            let mut lr = base.clone();
            let r = size_lagrangian(&mut lr, &LrConfig::new(t)).unwrap();
            assert!(
                r.width <= greedy.total_width() * 1.25,
                "{name}: LR width {} vs greedy {}",
                r.width,
                greedy.total_width()
            );
        }
    }

    #[test]
    fn loose_target_stays_near_minimum_width() {
        let mut d = design("c499");
        let dmin = sizing::min_delay_estimate(&d);
        let r = size_lagrangian(&mut d, &LrConfig::new(dmin * 2.0)).unwrap();
        let min_width = d.circuit().num_gates() as f64;
        assert!(
            r.width < min_width * 1.3,
            "relaxed target should barely size: width {}",
            r.width
        );
    }

    #[test]
    fn impossible_target_errors() {
        let mut d = design("c432");
        let dmin = sizing::min_delay_estimate(&d);
        assert!(size_lagrangian(&mut d, &LrConfig::new(dmin * 0.3)).is_err());
    }

    #[test]
    fn deterministic() {
        let base = design("c880");
        let dmin = sizing::min_delay_estimate(&base);
        let cfg = LrConfig::new(dmin * 1.2);
        let mut a = base.clone();
        let mut b = base.clone();
        let ra = size_lagrangian(&mut a, &cfg).unwrap();
        let rb = size_lagrangian(&mut b, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
