//! TILOS-style greedy gate sizing.
//!
//! Builds the optimization starting point: beginning from all-minimum
//! sizes, repeatedly upsize the critical-path gate with the best estimated
//! delay reduction until the target is met (or no move helps). This is the
//! classic sensitivity-driven sizing loop; it is not globally optimal, but
//! both the deterministic and statistical flows start from the *same*
//! sized design, so the comparison between them is apples-to-apples.

use crate::seeds_for_change;
use statleak_netlist::NodeId;
use statleak_obs as obs;
use statleak_sta::Sta;
use statleak_tech::Design;

/// Error returned when the delay target cannot be met by sizing alone.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeError {
    /// The best circuit delay achievable by the greedy sizer (ps).
    pub achieved: f64,
    /// The requested target (ps).
    pub target: f64,
}

impl std::fmt::Display for SizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sizing cannot reach {:.2} ps (best achievable {:.2} ps)",
            self.target, self.achieved
        )
    }
}

impl std::error::Error for SizeError {}

/// One greedy upsizing step: picks the critical-path gate whose one-step
/// upsize most reduces the circuit delay. Returns the new circuit delay,
/// or `None` if no upsizing move improves it.
fn best_upsize_step(design: &mut Design, sta: &mut Sta) -> Option<f64> {
    let before = sta.circuit_delay();
    let path = sta.critical_path(design);
    let mut best: Option<(NodeId, f64, f64)> = None; // (gate, new_size, delay)
    for &g in &path {
        if !design.circuit().node(g).kind.is_gate() {
            continue;
        }
        let old = design.size(g);
        let Some(up) = design.size_up(old) else {
            continue;
        };
        design.set_size(g, up);
        let undo = sta.recompute_cone(design, &seeds_for_change(design, g, true));
        let after = sta.circuit_delay();
        sta.undo(undo);
        design.set_size(g, old);
        if after < before - 1e-12 && best.as_ref().is_none_or(|&(_, _, d)| after < d) {
            best = Some((g, up, after));
        }
    }
    let (g, up, _) = best?;
    design.set_size(g, up);
    sta.recompute_cone(design, &seeds_for_change(design, g, true));
    Some(sta.circuit_delay())
}

/// Sizes the design for (approximately) minimum delay; returns the
/// achieved circuit delay (ps). Mutates the design in place.
pub fn size_for_min_delay(design: &mut Design) -> f64 {
    let _span = obs::span!("sizing.min_delay");
    let mut sta = Sta::analyze(design);
    while best_upsize_step(design, &mut sta).is_some() {}
    sta.circuit_delay()
}

/// Sizes the design to meet a delay target, stopping as soon as the target
/// is met (keeping the design as small — hence as leakage-lean — as the
/// greedy allows). Returns the achieved delay.
///
/// # Errors
///
/// Returns [`SizeError`] if greedy sizing cannot reach the target.
pub fn size_for_delay(design: &mut Design, t_clk: f64) -> Result<f64, SizeError> {
    let _span = obs::span!("sizing.for_delay");
    let mut sta = Sta::analyze(design);
    let mut delay = sta.circuit_delay();
    while delay > t_clk {
        match best_upsize_step(design, &mut sta) {
            Some(d) => delay = d,
            None => {
                return Err(SizeError {
                    achieved: delay,
                    target: t_clk,
                })
            }
        }
    }
    Ok(delay)
}

/// Estimates the minimum achievable delay without mutating the caller's
/// design (clones internally).
pub fn min_delay_estimate(design: &Design) -> f64 {
    let mut copy = design.clone();
    size_for_min_delay(&mut copy)
}

/// Sizes the design until the **timing yield** at `t_clk` reaches `eta` —
/// the starting point of the statistical flow. Candidates come from the
/// mean-critical path; each step commits the upsize that most improves the
/// yield. Returns the achieved yield.
///
/// # Errors
///
/// Returns [`SizeError`] (with `achieved` carrying the yield-equivalent
/// clock `clock_for_yield(eta)`) if no upsizing move can reach the target.
pub fn size_for_yield(
    design: &mut Design,
    fm: &statleak_tech::FactorModel,
    t_clk: f64,
    eta: f64,
) -> Result<f64, SizeError> {
    use statleak_ssta::Ssta;
    let _span = obs::span!("sizing.for_yield");
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1)");
    let mut ssta = Ssta::analyze(design, fm);
    loop {
        // Minimize the yield-equivalent clock `μ + Φ⁻¹(η)·σ`: identical to
        // maximizing the yield when close to the target, but — unlike the
        // yield itself — it keeps a usable gradient when the design is
        // still many sigma away (where `Φ` is numerically flat).
        let t_eta = ssta.clock_for_yield(eta);
        if t_eta <= t_clk {
            return Ok(ssta.timing_yield(t_clk));
        }
        let path = ssta.mean_critical_path(design);
        let mut best: Option<(NodeId, f64, f64)> = None; // (gate, size, t_eta)
        for &g in &path {
            if !design.circuit().node(g).kind.is_gate() {
                continue;
            }
            let old = design.size(g);
            let Some(up) = design.size_up(old) else {
                continue;
            };
            design.set_size(g, up);
            let undo = ssta.recompute_cone(design, fm, &seeds_for_change(design, g, true));
            let t_new = ssta.clock_for_yield(eta);
            ssta.undo(undo);
            design.set_size(g, old);
            if t_new < t_eta - 1e-12 && best.as_ref().is_none_or(|&(_, _, bt)| t_new < bt) {
                best = Some((g, up, t_new));
            }
        }
        match best {
            Some((g, up, _)) => {
                design.set_size(g, up);
                ssta.recompute_cone(design, fm, &seeds_for_change(design, g, true));
            }
            None => {
                // The mean-critical path is saturated or its single-path
                // improvements vanish under the statistical max of many
                // balanced paths. Fall back to one nominal-delay greedy
                // step (which re-traces the nominal critical path), then
                // resynchronize. Sizes grow monotonically in both step
                // kinds, so this always terminates.
                let mut sta = Sta::analyze(design);
                if best_upsize_step(design, &mut sta).is_none() {
                    return Err(SizeError {
                        achieved: t_eta,
                        target: t_clk,
                    });
                }
                ssta = Ssta::analyze(design, fm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::benchmarks;
    use statleak_tech::Technology;
    use std::sync::Arc;

    fn design(name: &str) -> Design {
        Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        )
    }

    #[test]
    fn min_delay_beats_unsized() {
        let mut d = design("c432");
        let before = Sta::analyze(&d).circuit_delay();
        let dmin = size_for_min_delay(&mut d);
        assert!(dmin < before, "{dmin} vs {before}");
        assert!((Sta::analyze(&d).circuit_delay() - dmin).abs() < 1e-9);
    }

    #[test]
    fn size_for_relaxed_target_touches_little() {
        let mut d = design("c499");
        let before = Sta::analyze(&d).circuit_delay();
        let achieved = size_for_delay(&mut d, before * 1.5).unwrap();
        assert!(achieved <= before * 1.5);
        // Relaxed target met without any sizing at all.
        assert!((d.total_width() - d.circuit().num_gates() as f64).abs() < 1e-9);
    }

    #[test]
    fn size_for_tight_target_upsizes() {
        let mut d = design("c880");
        let dmin = min_delay_estimate(&d);
        let achieved = size_for_delay(&mut d, 1.10 * dmin).unwrap();
        assert!(achieved <= 1.10 * dmin);
        assert!(d.total_width() > d.circuit().num_gates() as f64);
    }

    #[test]
    fn impossible_target_errors_with_achievable() {
        let mut d = design("c432");
        let dmin = min_delay_estimate(&d);
        let err = size_for_delay(&mut d, dmin * 0.5).unwrap_err();
        assert!(err.achieved >= dmin * 0.9);
        assert!(err.to_string().contains("cannot reach"));
    }

    #[test]
    fn min_delay_estimate_does_not_mutate() {
        let d = design("c432");
        let before = d.clone();
        let _ = min_delay_estimate(&d);
        assert_eq!(d, before);
    }
}
