//! The deterministic dual-Vth + sizing optimizer (comparison baseline).
//!
//! Classic corner-based flow: starting from a sized all-low-Vth design
//! that meets the clock, greedily swap gates to high Vth (largest nominal
//! leakage first) whenever the swap keeps the **nominal** critical path
//! within the (optionally guard-banded) clock; then try downsizing gates
//! with leftover slack. Repeated to convergence.
//!
//! Its blind spot — the reason the paper exists — is that a design that
//! nominally "just fits" has ~50 % timing yield under process variation;
//! protecting yield requires a guard band, which hands back much of the
//! leakage saving. The statistical optimizer removes the corner blindness.

use crate::seeds_for_change;
use rayon::prelude::*;
use statleak_netlist::NodeId;
use statleak_obs as obs;
use statleak_sta::Sta;
use statleak_tech::{Design, VthClass};

/// Deterministic optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeterministicOptimizer {
    /// Clock period to honor (ps).
    pub t_clk: f64,
    /// Guard band as a fraction of `t_clk` (0.0 = optimize to the corner;
    /// 0.05 = keep the nominal path 5 % faster than the clock).
    pub guard_band: f64,
    /// Maximum improvement passes.
    pub max_passes: usize,
}

/// Outcome of a deterministic optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct DetReport {
    /// Nominal total leakage power before optimization (W).
    pub initial_nominal_leakage: f64,
    /// Nominal total leakage power after optimization (W).
    pub final_nominal_leakage: f64,
    /// Nominal circuit delay after optimization (ps).
    pub final_delay: f64,
    /// Number of gates moved to high Vth.
    pub high_vth_gates: usize,
    /// Number of accepted downsizing moves.
    pub downsized_gates: usize,
    /// Passes actually run.
    pub passes: usize,
}

impl DeterministicOptimizer {
    /// Creates an optimizer for a clock period with no guard band.
    pub fn new(t_clk: f64) -> Self {
        Self {
            t_clk,
            guard_band: 0.0,
            max_passes: 8,
        }
    }

    /// Creates a guard-banded optimizer (`guard_band` fraction of `t_clk`).
    pub fn with_guard_band(t_clk: f64, guard_band: f64) -> Self {
        Self {
            t_clk,
            guard_band,
            max_passes: 8,
        }
    }

    /// The effective delay budget after guard banding.
    pub fn budget(&self) -> f64 {
        self.t_clk * (1.0 - self.guard_band)
    }

    /// Runs the optimization, mutating the design in place.
    ///
    /// # Panics
    ///
    /// Panics if the design does not meet the (guard-banded) budget to
    /// begin with — size it first with [`crate::sizing::size_for_delay`].
    pub fn optimize(&self, design: &mut Design) -> DetReport {
        let _span = obs::span!("opt.det_optimize");
        let budget = self.budget();
        let mut sta = Sta::analyze(design);
        assert!(
            sta.circuit_delay() <= budget + 1e-9,
            "starting design misses the budget: {:.2} > {:.2} ps",
            sta.circuit_delay(),
            budget
        );
        let initial = design.total_leakage_power_nominal();
        let mut downsized = 0usize;
        let mut passes = 0usize;

        for _ in 0..self.max_passes {
            passes += 1;
            let mut accepted = 0usize;

            // --- Vth pass: slack-covered moves first (by leakage), then
            // constrained moves by saving-per-shortfall. ---
            let slacks = sta.slacks(design, budget);
            let mut candidates: Vec<NodeId> = design
                .circuit()
                .gates()
                .filter(|&g| design.vth(g) == VthClass::Low)
                .collect();
            crate::rank_vth_candidates(
                design,
                &mut candidates,
                |g| slacks.of(g),
                |g| design.gate_leakage_nominal(g),
            );
            for g in candidates {
                design.set_vth(g, VthClass::High);
                let undo = sta.recompute_cone(design, &seeds_for_change(design, g, false));
                if sta.circuit_delay() <= budget + 1e-9 {
                    accepted += 1;
                } else {
                    sta.undo(undo);
                    design.set_vth(g, VthClass::Low);
                }
            }

            // --- Downsizing pass: biggest gates first. ---
            let mut sized: Vec<NodeId> = design
                .circuit()
                .gates()
                .filter(|&g| design.size(g) > 1.0)
                .collect();
            sized.sort_by(|&a, &b| design.size(b).total_cmp(&design.size(a)));
            for g in sized {
                let old = design.size(g);
                let Some(down) = design.size_down(old) else {
                    continue;
                };
                design.set_size(g, down);
                let undo = sta.recompute_cone(design, &seeds_for_change(design, g, true));
                if sta.circuit_delay() <= budget + 1e-9 {
                    accepted += 1;
                    downsized += 1;
                } else {
                    sta.undo(undo);
                    design.set_size(g, old);
                }
            }

            if accepted == 0 {
                break;
            }
        }

        DetReport {
            initial_nominal_leakage: initial,
            final_nominal_leakage: design.total_leakage_power_nominal(),
            final_delay: sta.circuit_delay(),
            high_vth_gates: design.high_vth_count(),
            downsized_gates: downsized,
            passes,
        }
    }
}

/// Result of the yield-targeted deterministic flow
/// ([`deterministic_for_yield`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DetYieldOutcome {
    /// The optimized design.
    pub design: Design,
    /// The inner deterministic report (against the guard-banded budget).
    pub report: DetReport,
    /// The guard band that was selected.
    pub guard_band: f64,
    /// The timing yield the selected design achieves at `t_clk`.
    pub achieved_yield: f64,
}

/// The corner methodology's answer to a yield requirement: pick a guard
/// band, size and optimize against the banded budget, and check the yield
/// *after the fact* with SSTA. This routine binary-searches the smallest
/// guard band whose optimized design reaches `eta` — i.e. it gives the
/// deterministic flow the best possible margin choice, which is the
/// *strongest* version of the baseline the statistical optimizer must beat.
///
/// # Errors
///
/// Returns [`crate::SizeError`] if even the largest feasible guard band
/// cannot be sized to, or the yield target is unreachable by guard-banding.
pub fn deterministic_for_yield(
    base: &Design,
    fm: &statleak_tech::FactorModel,
    t_clk: f64,
    eta: f64,
    iterations: usize,
) -> Result<DetYieldOutcome, crate::SizeError> {
    use statleak_ssta::Ssta;
    let _span = obs::span!("opt.deterministic_flow");
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1)");

    let evaluate = |guard: f64| -> Option<(Design, DetReport, f64)> {
        let mut d = base.clone();
        crate::sizing::size_for_delay(&mut d, t_clk * (1.0 - guard)).ok()?;
        let report = DeterministicOptimizer::with_guard_band(t_clk, guard).optimize(&mut d);
        let y = Ssta::analyze(&d, fm).timing_yield(t_clk);
        Some((d, report, y))
    };

    // Largest guard band that is still sizable.
    let dmin = crate::sizing::min_delay_estimate(base);
    let g_max = (1.0 - dmin / t_clk - 0.005).max(0.0);
    let (mut lo, mut hi) = (0.0_f64, g_max);
    let Some((d_hi, r_hi, y_hi)) = evaluate(hi) else {
        return Err(crate::SizeError {
            achieved: dmin,
            target: t_clk * (1.0 - g_max),
        });
    };
    let mut best = (d_hi, r_hi, hi, y_hi);
    if y_hi < eta {
        // Even the maximum margin misses the target: report best effort.
        return Ok(DetYieldOutcome {
            design: best.0,
            report: best.1,
            guard_band: best.2,
            achieved_yield: best.3,
        });
    }
    for _ in 0..iterations {
        let mid = 0.5 * (lo + hi);
        match evaluate(mid) {
            Some((d, r, y)) if y >= eta => {
                best = (d, r, mid, y);
                hi = mid;
            }
            _ => lo = mid,
        }
    }
    // The minimum feasible band is the corner methodology's natural pick,
    // but a *larger* band sometimes wins on leakage too (more sizing →
    // more Vth conversions). Give the baseline its best shot: probe a few
    // larger bands and keep the lowest nominal leakage among yield-passing
    // designs — nominal leakage being the deterministic flow's own
    // objective (it has no statistical leakage model to compare with).
    // The probes are independent full runs, so they fan out on rayon; the
    // ordered collect plus a serial fold with the original strict-< rule
    // keeps the selection bit-identical to the sequential loop.
    let g_star = best.2;
    let extras: Vec<f64> = vec![0.04, 0.08, 0.12];
    let probes: Vec<Option<(Design, DetReport, f64, f64)>> = extras
        .into_par_iter()
        .map(|extra| {
            let g = (g_star + extra).min(g_max);
            evaluate(g).map(|(d, r, y)| (d, r, g, y))
        })
        .collect();
    for (d, r, g, y) in probes.into_iter().flatten() {
        if y >= eta && r.final_nominal_leakage < best.1.final_nominal_leakage {
            best = (d, r, g, y);
        }
    }
    Ok(DetYieldOutcome {
        design: best.0,
        report: best.1,
        guard_band: best.2,
        achieved_yield: best.3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing;
    use statleak_netlist::benchmarks;
    use statleak_tech::Technology;
    use std::sync::Arc;

    fn sized_design(name: &str, slack_factor: f64) -> (Design, f64) {
        let mut d = Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        );
        let dmin = sizing::min_delay_estimate(&d);
        let t = dmin * slack_factor;
        sizing::size_for_delay(&mut d, t).unwrap();
        (d, t)
    }

    #[test]
    fn reduces_leakage_and_meets_clock() {
        let (mut d, t) = sized_design("c432", 1.15);
        let report = DeterministicOptimizer::new(t).optimize(&mut d);
        assert!(report.final_nominal_leakage < report.initial_nominal_leakage * 0.7);
        assert!(report.final_delay <= t + 1e-9);
        assert!(report.high_vth_gates > 0);
    }

    #[test]
    fn more_slack_means_more_high_vth() {
        let (mut tight, t1) = sized_design("c880", 1.05);
        let (mut loose, t2) = sized_design("c880", 1.30);
        let r1 = DeterministicOptimizer::new(t1).optimize(&mut tight);
        let r2 = DeterministicOptimizer::new(t2).optimize(&mut loose);
        assert!(
            r2.high_vth_gates > r1.high_vth_gates,
            "loose {} vs tight {}",
            r2.high_vth_gates,
            r1.high_vth_gates
        );
        // Relative savings larger with slack.
        let s1 = 1.0 - r1.final_nominal_leakage / r1.initial_nominal_leakage;
        let s2 = 1.0 - r2.final_nominal_leakage / r2.initial_nominal_leakage;
        assert!(s2 > s1, "savings {s2} vs {s1}");
    }

    #[test]
    fn guard_band_costs_leakage() {
        let (mut plain, t) = sized_design("c499", 1.15);
        let r_plain = DeterministicOptimizer::new(t).optimize(&mut plain);
        // The banded flow must size against the banded budget.
        let mut banded = Design::new(plain.circuit_arc(), plain.tech().clone());
        sizing::size_for_delay(&mut banded, t * 0.95).unwrap();
        let r_banded = DeterministicOptimizer::with_guard_band(t, 0.05).optimize(&mut banded);
        assert!(
            r_banded.final_nominal_leakage >= r_plain.final_nominal_leakage,
            "guard band should not reduce leakage further: {} vs {}",
            r_banded.final_nominal_leakage,
            r_plain.final_nominal_leakage
        );
        assert!(r_banded.final_delay <= t * 0.95 + 1e-9);
    }

    #[test]
    fn for_yield_meets_target_with_some_band() {
        use statleak_netlist::placement::Placement;
        use statleak_tech::{FactorModel, VariationConfig};
        let circuit = Arc::new(benchmarks::by_name("c432").unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        let base = Design::new(circuit, tech);
        let dmin = sizing::min_delay_estimate(&base);
        let t = dmin * 1.20;
        let out = deterministic_for_yield(&base, &fm, t, 0.95, 6).unwrap();
        assert!(out.achieved_yield >= 0.95, "yield {}", out.achieved_yield);
        assert!(out.guard_band > 0.0, "needs a nonzero band to reach 95%");
    }

    #[test]
    #[should_panic(expected = "starting design misses the budget")]
    fn rejects_unsized_start_at_tight_clock() {
        let mut d = Design::new(
            Arc::new(benchmarks::by_name("c432").unwrap()),
            Technology::ptm100(),
        );
        let dmin = sizing::min_delay_estimate(&d);
        // Unsized design cannot meet 1.05·Dmin.
        DeterministicOptimizer::new(dmin * 1.05).optimize(&mut d);
    }

    #[test]
    fn converges_within_pass_budget() {
        let (mut d, t) = sized_design("c1355", 1.10);
        let report = DeterministicOptimizer::new(t).optimize(&mut d);
        assert!(report.passes <= 8);
        // Re-running is a no-op (fixed point).
        let again = DeterministicOptimizer::new(t).optimize(&mut d);
        assert!(
            (again.final_nominal_leakage - report.final_nominal_leakage).abs()
                / report.final_nominal_leakage
                < 1e-9
        );
    }
}
