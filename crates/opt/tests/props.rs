//! Property-based tests for the optimizers: constraints are never
//! violated, objectives never regress, on randomly generated circuits.

use proptest::prelude::*;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::placement::Placement;
use statleak_opt::{sizing, DeterministicOptimizer, StatisticalOptimizer};
use statleak_ssta::Ssta;
use statleak_sta::Sta;
use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

fn setup(seed: u64, gates: usize) -> (Design, FactorModel) {
    let mut spec = GenSpec::new(format!("opt_prop{seed}_{gates}"), 8, 4, gates, 8);
    spec.seed = seed;
    let circuit = Arc::new(generate(&spec));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn deterministic_never_violates_clock(
        seed in 0u64..200,
        slack in 1.05..1.4f64,
    ) {
        let (mut design, _) = setup(seed, 60);
        let dmin = sizing::min_delay_estimate(&design);
        let t = dmin * slack;
        prop_assume!(sizing::size_for_delay(&mut design, t).is_ok());
        let before = design.total_leakage_power_nominal();
        let report = DeterministicOptimizer::new(t).optimize(&mut design);
        prop_assert!(Sta::analyze(&design).circuit_delay() <= t + 1e-9);
        prop_assert!(report.final_nominal_leakage <= before + 1e-18);
        prop_assert!(
            (design.total_leakage_power_nominal() - report.final_nominal_leakage).abs()
                < 1e-15
        );
    }

    #[test]
    fn statistical_never_violates_yield_floor(
        seed in 0u64..200,
        slack in 1.10..1.4f64,
        eta in 0.80..0.98f64,
    ) {
        let (mut design, fm) = setup(seed, 60);
        let dmin = sizing::min_delay_estimate(&design);
        let t = dmin * slack;
        prop_assume!(sizing::size_for_yield(&mut design, &fm, t, eta).is_ok());
        let report = StatisticalOptimizer::new(t)
            .with_yield_target(eta)
            .optimize(&mut design, &fm);
        let y = Ssta::analyze(&design, &fm).timing_yield(t);
        prop_assert!(y >= eta - 1e-9, "final yield {y} < floor {eta}");
        prop_assert!(report.final_objective <= report.initial_objective + 1e-18);
        // Trace is monotone non-increasing in the objective.
        for w in report.trace.windows(2) {
            prop_assert!(w[1].objective <= w[0].objective + 1e-15);
        }
    }

    #[test]
    fn sizing_monotone_targets(seed in 0u64..200) {
        let (design, _) = setup(seed, 50);
        let dmin = sizing::min_delay_estimate(&design);
        // A looser target never needs more width than a tighter one.
        let mut tight = design.clone();
        let mut loose = design.clone();
        prop_assume!(sizing::size_for_delay(&mut tight, dmin * 1.1).is_ok());
        prop_assume!(sizing::size_for_delay(&mut loose, dmin * 1.5).is_ok());
        prop_assert!(loose.total_width() <= tight.total_width() + 1e-9);
    }

    #[test]
    fn optimizers_preserve_circuit_structure(seed in 0u64..200) {
        let (mut design, fm) = setup(seed, 40);
        let dmin = sizing::min_delay_estimate(&design);
        let t = dmin * 1.25;
        prop_assume!(sizing::size_for_yield(&mut design, &fm, t, 0.9).is_ok());
        let gates_before: Vec<_> = design.circuit().gates().collect();
        StatisticalOptimizer::new(t)
            .with_yield_target(0.9)
            .optimize(&mut design, &fm);
        let gates_after: Vec<_> = design.circuit().gates().collect();
        prop_assert_eq!(gates_before, gates_after);
        // Sizes stay on the discrete grid.
        for g in design.circuit().gates() {
            prop_assert!(design.tech().sizes.contains(&design.size(g)));
        }
    }
}
