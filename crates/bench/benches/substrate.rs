//! Criterion benches for the substrates: circuit generation, `.bench`
//! parsing, factor-model construction, and the statistics kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::{bench as benchio, benchmarks, placement::Placement};
use statleak_stats::{clark_max, phi_inv, wilkinson_sum, LognormalTerm};
use statleak_tech::{FactorModel, Technology, VariationConfig};

fn bench_netlist(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist");
    group.bench_function("generate/c7552_class", |b| {
        b.iter(|| std::hint::black_box(generate(&GenSpec::new("bench", 207, 108, 3512, 43))))
    });
    let c880 = benchmarks::by_name("c880").expect("known");
    let text = benchio::write(&c880);
    group.bench_function("parse_bench/c880", |b| {
        b.iter(|| std::hint::black_box(benchio::parse("c880", &text).expect("round trip")))
    });
    group.bench_function("placement/c880", |b| {
        b.iter(|| std::hint::black_box(Placement::by_level(&c880)))
    });
    group.finish();
}

fn bench_factor_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("factor_model");
    let circuit = benchmarks::by_name("c3540").expect("known");
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let cfg = VariationConfig::ptm100();
    group.bench_function("build/c3540", |b| {
        b.iter(|| {
            std::hint::black_box(
                FactorModel::build(&circuit, &placement, &tech, &cfg).expect("factors"),
            )
        })
    });
    group.finish();
}

fn bench_stats_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    group.bench_function("clark_max", |b| {
        b.iter(|| std::hint::black_box(clark_max(1.0, 2.0, 1.2, 1.5, 0.8)))
    });
    group.bench_function("phi_inv", |b| {
        b.iter(|| std::hint::black_box(phi_inv(0.987)))
    });
    let terms: Vec<LognormalTerm> = (0..16)
        .map(|i| LognormalTerm {
            mu: -12.0 + 0.1 * i as f64,
            factor_coeffs: vec![0.1; 17],
            local_coeff: 0.2,
        })
        .collect();
    group.bench_function("wilkinson_sum/16_terms", |b| {
        b.iter(|| std::hint::black_box(wilkinson_sum(&terms)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_netlist,
    bench_factor_model,
    bench_stats_kernels
);
criterion_main!(benches);
