//! Criterion benches for the analysis engines: deterministic STA, SSTA,
//! statistical leakage, and Monte Carlo throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use statleak_bench::standard_setup;
use statleak_leakage::LeakageAnalysis;
use statleak_mc::{McConfig, MonteCarlo};
use statleak_ssta::Ssta;
use statleak_sta::Sta;
use statleak_tech::VthClass;

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta");
    for name in ["c432", "c1908", "c7552"] {
        let (design, _) = standard_setup(name);
        group.bench_function(format!("full/{name}"), |b| {
            b.iter(|| std::hint::black_box(Sta::analyze(&design)))
        });
    }
    // Incremental cone update after a Vth swap.
    let (mut design, _) = standard_setup("c1908");
    let g = design.circuit().gates().nth(200).expect("big circuit");
    let sta = Sta::analyze(&design);
    design.set_vth(g, VthClass::High);
    group.bench_function("incremental/c1908", |b| {
        b.iter_batched(
            || sta.clone(),
            |mut s| std::hint::black_box(s.recompute_cone(&design, &[g])),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_ssta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssta");
    for name in ["c432", "c1908"] {
        let (design, fm) = standard_setup(name);
        group.bench_function(format!("full/{name}"), |b| {
            b.iter(|| std::hint::black_box(Ssta::analyze(&design, &fm)))
        });
    }
    let (mut design, fm) = standard_setup("c1908");
    let g = design.circuit().gates().nth(200).expect("big circuit");
    let ssta = Ssta::analyze(&design, &fm);
    design.set_vth(g, VthClass::High);
    group.bench_function("incremental/c1908", |b| {
        b.iter_batched(
            || ssta.clone(),
            |mut s| std::hint::black_box(s.recompute_cone(&design, &fm, &[g])),
            BatchSize::SmallInput,
        )
    });
    let (design, fm) = standard_setup("c880");
    let ssta = Ssta::analyze(&design, &fm);
    group.bench_function("yield/c880", |b| {
        b.iter(|| std::hint::black_box(ssta.timing_yield(1000.0)))
    });
    group.finish();
}

fn bench_leakage(c: &mut Criterion) {
    let mut group = c.benchmark_group("leakage");
    for name in ["c432", "c7552"] {
        let (design, fm) = standard_setup(name);
        group.bench_function(format!("analyze/{name}"), |b| {
            b.iter(|| std::hint::black_box(LeakageAnalysis::analyze(&design, &fm)))
        });
        let leak = LeakageAnalysis::analyze(&design, &fm);
        group.bench_function(format!("total_lognormal/{name}"), |b| {
            b.iter(|| std::hint::black_box(leak.total_current()))
        });
    }
    let (mut design, fm) = standard_setup("c7552");
    let leak = LeakageAnalysis::analyze(&design, &fm);
    let g = design.circuit().gates().nth(1000).expect("big circuit");
    design.set_vth(g, VthClass::High);
    group.bench_function("update_gate/c7552", |b| {
        b.iter_batched(
            || leak.clone(),
            |mut l| std::hint::black_box(l.update_gate(&design, &fm, g)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_mc(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    let (design, fm) = standard_setup("c432");
    group.bench_function("c432/200_samples", |b| {
        b.iter(|| {
            std::hint::black_box(
                MonteCarlo::new(McConfig {
                    samples: 200,
                    seed: 1,
                    threads: 0,
                    ..Default::default()
                })
                .run(&design, &fm),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sta, bench_ssta, bench_leakage, bench_mc);
criterion_main!(benches);
