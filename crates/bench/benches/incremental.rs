//! Criterion benches mirroring the `perf` binary: per-move incremental
//! cone updates against the full-reanalysis baseline they replace.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use statleak_bench::standard_setup;
use statleak_opt::sizing;
use statleak_ssta::Ssta;
use statleak_tech::VthClass;

fn bench_move_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("move_update");
    for name in ["c880", "c1908"] {
        let (mut design, fm) = standard_setup(name);
        let t = 1.15 * sizing::min_delay_estimate(&design);
        sizing::size_for_delay(&mut design, t).expect("sizable");
        let ssta = Ssta::analyze(&design, &fm);
        let g = design
            .circuit()
            .gates()
            .nth(design.circuit().num_gates() / 3)
            .expect("non-trivial circuit");
        design.set_vth(g, VthClass::High);
        group.bench_function(format!("incremental/{name}"), |b| {
            b.iter_batched(
                || ssta.clone(),
                |mut s| std::hint::black_box(s.recompute_cone(&design, &fm, &[g])),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("full_reanalysis/{name}"), |b| {
            b.iter(|| std::hint::black_box(Ssta::analyze(&design, &fm)))
        });
    }
    group.finish();
}

fn bench_move_with_undo(c: &mut Criterion) {
    // The optimizer's reject path: recompute the cone, then roll it back.
    let mut group = c.benchmark_group("move_reject");
    let (mut design, fm) = standard_setup("c1908");
    let t = 1.15 * sizing::min_delay_estimate(&design);
    sizing::size_for_delay(&mut design, t).expect("sizable");
    let mut ssta = Ssta::analyze(&design, &fm);
    let g = design
        .circuit()
        .gates()
        .nth(design.circuit().num_gates() / 3)
        .expect("non-trivial circuit");
    design.set_vth(g, VthClass::High);
    group.bench_function("recompute_and_undo/c1908", |b| {
        b.iter(|| {
            let undo = ssta.recompute_cone(&design, &fm, &[g]);
            ssta.undo(undo);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_move_update, bench_move_with_undo);
criterion_main!(benches);
