//! Criterion benches for the extension features: criticality, path
//! enumeration, slew-aware STA, joint yield, adaptive body bias, and
//! library export.

use criterion::{criterion_group, criterion_main, Criterion};
use statleak_bench::standard_setup;
use statleak_core::joint::JointYield;
use statleak_mc::{AbbConfig, McConfig, MonteCarlo};
use statleak_ssta::Ssta;
use statleak_sta::{SlewSta, Sta};
use statleak_tech::{liberty, Technology};

fn bench_criticality(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality");
    let (design, fm) = standard_setup("c880");
    let ssta = Ssta::analyze(&design, &fm);
    let t = ssta.circuit_delay().mean;
    group.bench_function("path_through/c880", |b| {
        b.iter(|| std::hint::black_box(ssta.path_through(&design, &fm)))
    });
    group.bench_function("criticalities/c880", |b| {
        b.iter(|| std::hint::black_box(ssta.criticalities(&design, &fm, t)))
    });
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths");
    let (design, _) = standard_setup("c1908");
    let sta = Sta::analyze(&design);
    for k in [1usize, 10, 100] {
        group.bench_function(format!("top_{k}/c1908"), |b| {
            b.iter(|| std::hint::black_box(sta.top_paths(&design, k)))
        });
    }
    group.finish();
}

fn bench_slew_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("slew_sta");
    for name in ["c432", "c3540"] {
        let (design, _) = standard_setup(name);
        group.bench_function(format!("full/{name}"), |b| {
            b.iter(|| std::hint::black_box(SlewSta::analyze(&design)))
        });
    }
    group.finish();
}

fn bench_joint_yield(c: &mut Criterion) {
    let mut group = c.benchmark_group("joint_yield");
    let (design, fm) = standard_setup("c880");
    group.bench_function("analyze/c880", |b| {
        b.iter(|| std::hint::black_box(JointYield::analyze(&design, &fm)))
    });
    let j = JointYield::analyze(&design, &fm);
    group.bench_function("query", |b| {
        b.iter(|| std::hint::black_box(j.joint_yield(1000.0, 1e-5)))
    });
    group.finish();
}

fn bench_abb(c: &mut Criterion) {
    let mut group = c.benchmark_group("abb");
    group.sample_size(10);
    let (design, fm) = standard_setup("c432");
    let ssta = Ssta::analyze(&design, &fm);
    let t = ssta.clock_for_yield(0.9);
    group.bench_function("c432/100_samples", |b| {
        b.iter(|| {
            std::hint::black_box(
                MonteCarlo::new(McConfig {
                    samples: 100,
                    seed: 2,
                    threads: 0,
                    ..Default::default()
                })
                .run_abb(&design, &fm, &AbbConfig::standard(t)),
            )
        })
    });
    group.finish();
}

fn bench_liberty(c: &mut Criterion) {
    let mut group = c.benchmark_group("liberty");
    let tech = Technology::ptm100();
    group.bench_function("export", |b| {
        b.iter(|| std::hint::black_box(liberty::export(&tech, "lib")))
    });
    let text = liberty::export(&tech, "lib");
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(liberty::parse(&text).expect("round trip")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_criticality,
    bench_paths,
    bench_slew_sta,
    bench_joint_yield,
    bench_abb,
    bench_liberty
);
criterion_main!(benches);
