//! Criterion benches for the optimizers: sizing, deterministic dual-Vth,
//! and the statistical optimizer (tables T2's runtime column).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use statleak_bench::standard_setup;
use statleak_opt::{sizing, DeterministicOptimizer, StatisticalOptimizer};

fn bench_sizing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sizing");
    group.sample_size(10);
    let (design, fm) = standard_setup("c432");
    let dmin = sizing::min_delay_estimate(&design);
    group.bench_function("min_delay/c432", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| std::hint::black_box(sizing::size_for_min_delay(&mut d)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("for_delay/c432", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| std::hint::black_box(sizing::size_for_delay(&mut d, dmin * 1.2)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("for_yield/c432", |b| {
        b.iter_batched(
            || design.clone(),
            |mut d| std::hint::black_box(sizing::size_for_yield(&mut d, &fm, dmin * 1.2, 0.95)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let (base, fm) = standard_setup(name);
        let dmin = sizing::min_delay_estimate(&base);
        let t = dmin * 1.2;

        let mut det_start = base.clone();
        sizing::size_for_delay(&mut det_start, t).expect("sizable");
        group.bench_function(format!("deterministic/{name}"), |b| {
            b.iter_batched(
                || det_start.clone(),
                |mut d| std::hint::black_box(DeterministicOptimizer::new(t).optimize(&mut d)),
                BatchSize::SmallInput,
            )
        });

        let mut stat_start = base.clone();
        sizing::size_for_yield(&mut stat_start, &fm, t, 0.95).expect("sizable");
        group.bench_function(format!("statistical/{name}"), |b| {
            b.iter_batched(
                || stat_start.clone(),
                |mut d| {
                    std::hint::black_box(
                        StatisticalOptimizer::new(t)
                            .with_yield_target(0.95)
                            .optimize(&mut d, &fm),
                    )
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_lr_sizing(c: &mut Criterion) {
    use statleak_opt::{size_lagrangian, LrConfig};
    let mut group = c.benchmark_group("lr_sizing");
    group.sample_size(10);
    let (base, _) = standard_setup("c432");
    let dmin = sizing::min_delay_estimate(&base);
    group.bench_function("c432", |b| {
        b.iter_batched(
            || base.clone(),
            |mut d| std::hint::black_box(size_lagrangian(&mut d, &LrConfig::new(dmin * 1.2))),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_sizing, bench_optimizers, bench_lr_sizing);
criterion_main!(benches);
