//! End-to-end crash/resume test for the `repro` harness: SIGKILL a run
//! mid-suite, re-invoke it, and require the resumed run to produce CSVs
//! byte-identical to an uninterrupted run.
//!
//! Marked `#[ignore]` because it runs real experiments (tens of seconds)
//! and kills processes; CI runs it explicitly with
//! `cargo test -p statleak-bench --test resume -- --ignored`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statleak_resume_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Counts completed checkpoint cells under `<out>/.checkpoint/*/`.
fn cell_count(out: &Path) -> usize {
    let Ok(manifests) = fs::read_dir(out.join(".checkpoint")) else {
        return 0;
    };
    manifests
        .flatten()
        .filter_map(|m| fs::read_dir(m.path()).ok())
        .flatten()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
        .count()
}

/// T4 on the quick suite: multi-cell, deterministic output, and — unlike
/// T2 — no wall-clock runtime columns, so byte-identity is meaningful.
const EXPERIMENT: &str = "t4";
const CSV: &str = "t4_mc_validation.csv";

#[test]
#[ignore = "spawns and SIGKILLs real repro runs; run with --ignored"]
fn sigkill_mid_run_then_resume_reproduces_identical_csv() {
    // Reference: one uninterrupted run.
    let ref_out = tmp_dir("ref");
    let status = repro()
        .args(["--quick", "--out", ref_out.to_str().unwrap(), EXPERIMENT])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let reference = fs::read(ref_out.join(CSV)).unwrap();

    // Interrupted: start the same run, wait for the first checkpointed
    // cell, then SIGKILL the process (Child::kill is SIGKILL on Unix).
    let kill_out = tmp_dir("kill");
    let mut child = repro()
        .args(["--quick", "--out", kill_out.to_str().unwrap(), EXPERIMENT])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut died_naturally = false;
    while cell_count(&kill_out) == 0 {
        if child.try_wait().unwrap().is_some() {
            died_naturally = true; // finished before we could kill it
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint cell appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    if !died_naturally {
        child.kill().unwrap();
    }
    let _ = child.wait();
    if !died_naturally {
        assert!(
            !kill_out.join(CSV).exists(),
            "run was killed after the CSV was already written; kill earlier"
        );
    }

    // Resume: the same invocation must pick up the stored cells, finish,
    // and write byte-identical output.
    let out = repro()
        .args(["--quick", "--out", kill_out.to_str().unwrap(), EXPERIMENT])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    if !died_naturally {
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("restored from checkpoint"),
            "resume did not reuse the checkpoint:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let resumed = fs::read(kill_out.join(CSV)).unwrap();
    assert_eq!(
        reference, resumed,
        "resumed CSV differs from uninterrupted run"
    );

    // A completed run clears its cells: nothing left to replay.
    assert_eq!(cell_count(&kill_out), 0);

    let _ = fs::remove_dir_all(&ref_out);
    let _ = fs::remove_dir_all(&kill_out);
}

#[test]
#[ignore = "spawns real repro runs; run with --ignored"]
fn no_checkpoint_flag_disables_the_manifest() {
    let out_dir = tmp_dir("nockpt");
    let status = repro()
        .args([
            "--quick",
            "--no-checkpoint",
            "--out",
            out_dir.to_str().unwrap(),
            "t1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    assert!(!out_dir.join(".checkpoint").exists());
    assert!(out_dir.join("t1_benchmarks.csv").exists());
    let _ = fs::remove_dir_all(&out_dir);
}
