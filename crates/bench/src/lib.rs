//! Shared helpers for the `statleak` benchmark and reproduction harness.
//!
//! The interesting entry points are the `repro` binary (regenerates every
//! table and figure of the reproduction — see `EXPERIMENTS.md`) and the
//! Criterion benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;

use statleak_netlist::{benchmarks, placement::Placement, Circuit};
use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

/// Builds the standard `(design, factor model)` pair for a benchmark with
/// the default 100 nm variation budget.
///
/// # Panics
///
/// Panics if the benchmark name is unknown (these helpers are only used
/// with the fixed suite).
pub fn standard_setup(name: &str) -> (Design, FactorModel) {
    let circuit: Arc<Circuit> =
        Arc::new(benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}")));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())
        .expect("exponential-kernel correlation always factors");
    (Design::new(circuit, tech), fm)
}

/// Peak resident set size of this process so far (bytes), read from the
/// `VmHWM` line of `/proc/self/status`. Returns `None` on platforms
/// without procfs (the perf harness then omits the field).
///
/// The high-water mark is monotone over the process lifetime, so call
/// sites that want per-phase attribution must measure phases in separate
/// processes; the harness records it once per run as an upper bound on
/// working-set size.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// The benchmark list used in quick mode (small/medium circuits).
pub fn quick_suite() -> Vec<&'static str> {
    vec!["c432", "c499", "c880"]
}

/// The full evaluation suite (everything except c17).
pub fn full_suite() -> Vec<&'static str> {
    benchmarks::evaluation_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_setup_builds() {
        let (d, fm) = standard_setup("c432");
        assert_eq!(d.circuit().num_gates(), 160);
        assert_eq!(fm.num_shared(), 17);
    }

    #[test]
    fn suites_are_subsets_of_known() {
        for n in quick_suite().into_iter().chain(full_suite()) {
            assert!(benchmarks::spec(n).is_some(), "{n}");
        }
    }
}
