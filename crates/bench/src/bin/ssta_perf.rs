//! SSTA scaling harness: full-analyze wall time, incremental move cost,
//! and peak RSS from ISCAS-size circuits up to generated million-gate
//! netlists.
//!
//! Per circuit the harness measures:
//!
//! - circuit + factor-model build time;
//! - full `Ssta::analyze` wall time at 1, 4, and 8 threads, asserting the
//!   circuit delay (mean, sigma) and timing yield are **bit-identical**
//!   across thread counts;
//! - the historical dense-canonical reference analysis (feature
//!   `dense-ref`), asserting the sparse path reproduces it bit-exactly;
//! - per-move incremental `recompute_cone` cost;
//! - the process peak RSS high-water mark after the circuit (monotone
//!   across the run, so rows are ordered smallest circuit first).
//!
//! Results land in `BENCH_ssta.json` (or the path given as the first CLI
//! argument):
//!
//! ```text
//! cargo run --release -p statleak-bench --bin ssta_perf [out.json] [circuit...]
//! ```
//!
//! Trailing arguments restrict the run to the named circuits (default:
//! c1908, c7552, gen10k, gen100k, gen500k, gen1m). Generated names follow
//! `statleak_netlist::benchmarks::generated_spec` (`gen<N>[k|m]`).

use statleak_bench::{peak_rss_bytes, standard_setup};
use statleak_netlist::NodeId;
use statleak_ssta::{dense_ref, Ssta};
use statleak_tech::{Design, VthClass};
use std::fmt::Write as _;
use std::time::Instant;

/// Thread counts swept for the bit-identity check and timing curve.
const THREADS: [usize; 3] = [1, 4, 8];
/// Incremental moves timed per circuit (each is a Vth toggle + cone update).
const INCR_MOVES: usize = 200;

struct Row {
    name: String,
    gates: usize,
    depth: usize,
    num_shared: usize,
    build_ms: f64,
    analyze_ms: Vec<(usize, f64)>,
    dense_ref_ms: f64,
    incr_us_per_move: f64,
    delay_mean: f64,
    delay_sigma: f64,
    yield_at_clk: f64,
    peak_rss_bytes: Option<u64>,
}

fn toggle_vth(design: &mut Design, g: NodeId) {
    let flip = if design.vth(g) == VthClass::Low {
        VthClass::High
    } else {
        VthClass::Low
    };
    design.set_vth(g, flip);
}

/// Analysis repetitions scaled down for big circuits.
fn reps_for(gates: usize) -> usize {
    match gates {
        0..=10_000 => 10,
        10_001..=200_000 => 3,
        _ => 1,
    }
}

/// Incremental moves scaled down for big circuits (fanout cones grow with
/// the netlist, so per-move cost does too).
fn moves_for(gates: usize) -> usize {
    match gates {
        0..=10_000 => INCR_MOVES,
        10_001..=200_000 => 100,
        _ => 25,
    }
}

fn measure(name: &str) -> Row {
    let start = Instant::now();
    let (mut design, fm) = standard_setup(name);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;
    let gates: Vec<NodeId> = design.circuit().gates().collect();
    let reps = reps_for(gates.len());

    // Full analysis at each thread count; results must be bit-identical.
    let mut analyze_ms = Vec::new();
    let mut reference: Option<Ssta> = None;
    for &t in &THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("thread pool");
        let start = Instant::now();
        let mut ssta = pool.install(|| Ssta::analyze(&design, &fm));
        for _ in 1..reps {
            ssta = pool.install(|| Ssta::analyze(&design, &fm));
        }
        analyze_ms.push((t, start.elapsed().as_secs_f64() * 1e3 / reps as f64));
        if let Some(r) = &reference {
            assert!(
                *r == ssta,
                "{name}: analysis at {t} threads differs from 1 thread"
            );
        } else {
            reference = Some(ssta);
        }
    }
    let ssta = reference.expect("at least one thread count ran");

    // Historical dense-canonical reference: same propagation, dense factor
    // vectors, single-threaded. The sparse path must reproduce it exactly.
    let start = Instant::now();
    let dense = dense_ref::analyze(&design, &fm);
    let dense_ref_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        ssta.circuit_delay().mean,
        dense.circuit_delay.mean,
        "{name}: sparse/dense circuit-delay mean diverged"
    );
    assert_eq!(
        ssta.circuit_delay().variance,
        dense.circuit_delay.variance,
        "{name}: sparse/dense circuit-delay variance diverged"
    );

    let delay_mean = ssta.circuit_delay().mean;
    let delay_sigma = ssta.circuit_delay().std();
    let t_clk = delay_mean + 3.0 * delay_sigma;
    let yield_at_clk = ssta.timing_yield(t_clk);

    // Incremental moves (optimizer inner loop), single-threaded.
    let moves = moves_for(gates.len());
    let mut ssta = ssta;
    let start = Instant::now();
    for i in 0..moves {
        let g = gates[(i * 37) % gates.len()];
        toggle_vth(&mut design, g);
        std::hint::black_box(ssta.recompute_cone(&design, &fm, &[g]));
    }
    let incr_us_per_move = start.elapsed().as_secs_f64() * 1e6 / moves as f64;

    Row {
        name: name.to_string(),
        gates: gates.len(),
        depth: design.circuit().depth(),
        num_shared: fm.num_shared(),
        build_ms,
        analyze_ms,
        dense_ref_ms,
        incr_us_per_move,
        delay_mean,
        delay_sigma,
        yield_at_clk,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_ssta.json".to_string());
    let circuits: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        ["c1908", "c7552", "gen10k", "gen100k", "gen500k", "gen1m"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for name in &circuits {
        eprintln!("measuring {name} ...");
        let row = measure(name);
        let one = row.analyze_ms.first().map(|&(_, ms)| ms).unwrap_or(0.0);
        eprintln!(
            "  {name}: {} gates, depth {} | build {:.0} ms | analyze {:.2} ms @1t \
             (dense ref {:.2} ms) | incremental {:.1} us/move | rss {:.0} MB",
            row.gates,
            row.depth,
            row.build_ms,
            one,
            row.dense_ref_ms,
            row.incr_us_per_move,
            row.peak_rss_bytes.unwrap_or(0) as f64 / (1024.0 * 1024.0),
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"harness\": \"cargo run --release -p statleak-bench --bin ssta_perf\",\n");
    writeln!(json, "  \"host_cpus\": {host_cpus},").unwrap();
    json.push_str("  \"threads_swept\": [1, 4, 8],\n");
    json.push_str(
        "  \"identity\": \"circuit delay and yield bit-identical across 1/4/8 threads \
         and vs the dense reference (asserted at run time)\",\n",
    );
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"gates\": {},", r.gates).unwrap();
        writeln!(json, "      \"depth\": {},", r.depth).unwrap();
        writeln!(json, "      \"shared_factors\": {},", r.num_shared).unwrap();
        writeln!(json, "      \"build_ms\": {:.2},", r.build_ms).unwrap();
        for &(t, ms) in &r.analyze_ms {
            writeln!(json, "      \"full_analyze_ms_{t}t\": {ms:.3},").unwrap();
        }
        writeln!(
            json,
            "      \"dense_ref_analyze_ms\": {:.3},",
            r.dense_ref_ms
        )
        .unwrap();
        writeln!(
            json,
            "      \"incremental_us_per_move\": {:.3},",
            r.incr_us_per_move
        )
        .unwrap();
        writeln!(
            json,
            "      \"circuit_delay_mean_ps\": {:.4},",
            r.delay_mean
        )
        .unwrap();
        writeln!(
            json,
            "      \"circuit_delay_sigma_ps\": {:.4},",
            r.delay_sigma
        )
        .unwrap();
        writeln!(
            json,
            "      \"yield_at_mean_plus_3sigma\": {:.6},",
            r.yield_at_clk
        )
        .unwrap();
        match r.peak_rss_bytes {
            Some(b) => writeln!(json, "      \"peak_rss_bytes\": {b}").unwrap(),
            None => writeln!(json, "      \"peak_rss_bytes\": null").unwrap(),
        }
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_ssta.json");
    eprintln!("wrote {out_path}");
}
