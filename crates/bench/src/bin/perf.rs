//! Performance harness for the optimizer inner loop.
//!
//! Measures, per benchmark circuit:
//!
//! - full `Ssta::analyze` wall time;
//! - per-move incremental `recompute_cone` cost (with peak/mean fanout-cone
//!   size) against a full-reanalysis-per-move baseline, reporting the
//!   speedup the scratch-based cone update buys;
//! - one statistical optimizer run on a sized design;
//! - the complete `statistical_for_yield` flow (margin sweep included).
//!
//! Results land in `BENCH_opt.json` (or the path given as the first CLI
//! argument) so the numbers are re-runnable and reviewable:
//!
//! ```text
//! cargo run --release -p statleak-bench --bin perf [out.json] [circuit...]
//! ```
//!
//! Trailing arguments restrict the run to the named circuits (default:
//! c432, c880, c1908). Setting `STATLEAK_TRACE=<file.ndjson>` records an
//! observability trace during the run — the CI `obs-overhead` job uses a
//! c880-only run in both modes to bound the instrumentation cost.

use statleak_bench::{peak_rss_bytes, standard_setup};
use statleak_netlist::{ConeScratch, NodeId};
use statleak_obs as obs;
use statleak_opt::{sizing, statistical_for_yield, StatisticalOptimizer};
use statleak_ssta::Ssta;
use statleak_tech::{Design, VthClass};
use std::fmt::Write as _;
use std::time::Instant;

/// Incremental moves timed per circuit (each is a Vth toggle + cone update).
const INCR_MOVES: usize = 400;
/// Moves timed with a full re-analysis each (the pre-incremental baseline).
const BASELINE_MOVES: usize = 40;
/// Repetitions of the full analysis for a stable mean.
const ANALYZE_REPS: usize = 20;

struct Row {
    name: String,
    gates: usize,
    full_analyze_us: f64,
    incr_us_per_move: f64,
    moves_per_sec: f64,
    peak_cone: usize,
    mean_cone: f64,
    baseline_us_per_move: f64,
    speedup: f64,
    optimizer_run_ms: f64,
    optimizer_passes: usize,
    flow_ms: f64,
}

/// Deterministic move schedule: stride through the gate list so cones of
/// many shapes (deep and shallow) are exercised.
fn move_gate(gates: &[NodeId], i: usize) -> NodeId {
    gates[(i * 37) % gates.len()]
}

fn toggle_vth(design: &mut Design, g: NodeId) {
    let flip = if design.vth(g) == VthClass::Low {
        VthClass::High
    } else {
        VthClass::Low
    };
    design.set_vth(g, flip);
}

fn measure(name: &str) -> Row {
    let (mut design, fm) = standard_setup(name);
    let gates: Vec<NodeId> = design.circuit().gates().collect();
    let dmin = sizing::min_delay_estimate(&design);
    let t_clk = dmin * 1.15;
    sizing::size_for_delay(&mut design, t_clk).expect("suite circuits are sizable");

    // Full SSTA analysis.
    let start = Instant::now();
    let mut ssta = Ssta::analyze(&design, &fm);
    for _ in 1..ANALYZE_REPS {
        ssta = Ssta::analyze(&design, &fm);
    }
    let full_analyze_us = start.elapsed().as_secs_f64() * 1e6 / ANALYZE_REPS as f64;

    // Cone statistics for the move schedule (outside the timed loops).
    let mut scratch = ConeScratch::new();
    let mut peak_cone = 0usize;
    let mut cone_total = 0usize;
    for i in 0..INCR_MOVES {
        design
            .circuit()
            .collect_fanout_cone(&[move_gate(&gates, i)], &mut scratch);
        peak_cone = peak_cone.max(scratch.cone().len());
        cone_total += scratch.cone().len();
    }
    let mean_cone = cone_total as f64 / INCR_MOVES as f64;

    // Per-move incremental update (the optimizer inner loop).
    let start = Instant::now();
    for i in 0..INCR_MOVES {
        let g = move_gate(&gates, i);
        toggle_vth(&mut design, g);
        std::hint::black_box(ssta.recompute_cone(&design, &fm, &[g]));
    }
    let incr_us_per_move = start.elapsed().as_secs_f64() * 1e6 / INCR_MOVES as f64;

    // Baseline: the same move validated by a from-scratch analysis.
    let start = Instant::now();
    for i in 0..BASELINE_MOVES {
        let g = move_gate(&gates, i);
        toggle_vth(&mut design, g);
        std::hint::black_box(Ssta::analyze(&design, &fm));
    }
    let baseline_us_per_move = start.elapsed().as_secs_f64() * 1e6 / BASELINE_MOVES as f64;

    // One statistical optimizer run on a freshly sized design.
    let (mut d_opt, _) = standard_setup(name);
    sizing::size_for_delay(&mut d_opt, t_clk).expect("sizable");
    let start = Instant::now();
    let report = StatisticalOptimizer::new(t_clk).optimize(&mut d_opt, &fm);
    let optimizer_run_ms = start.elapsed().as_secs_f64() * 1e3;

    // Full yield-targeted flow: margin sweep + sizing + optimization.
    let (base, _) = standard_setup(name);
    let t_flow = dmin * 1.20;
    let start = Instant::now();
    statistical_for_yield(&base, &fm, t_flow, 0.95).expect("flow succeeds on the suite");
    let flow_ms = start.elapsed().as_secs_f64() * 1e3;

    Row {
        name: name.to_string(),
        gates: base.circuit().num_gates(),
        full_analyze_us,
        incr_us_per_move,
        moves_per_sec: 1e6 / incr_us_per_move,
        peak_cone,
        mean_cone,
        baseline_us_per_move,
        speedup: baseline_us_per_move / incr_us_per_move,
        optimizer_run_ms,
        optimizer_passes: report.passes,
        flow_ms,
    }
}

fn main() {
    if let Err(e) = obs::init_from_env() {
        eprintln!("statleak[warn] STATLEAK_TRACE setup failed: {e}");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_opt.json".to_string());
    let circuits: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        ["c432", "c880", "c1908"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    let mut rows = Vec::new();
    for name in &circuits {
        eprintln!("measuring {name} ...");
        let row = measure(name);
        eprintln!(
            "  {name}: full analyze {:.1} us | incremental {:.2} us/move ({:.0} moves/s, \
             peak cone {}) | baseline {:.1} us/move | speedup {:.1}x",
            row.full_analyze_us,
            row.incr_us_per_move,
            row.moves_per_sec,
            row.peak_cone,
            row.baseline_us_per_move,
            row.speedup,
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"harness\": \"cargo run --release -p statleak-bench --bin perf\",\n");
    writeln!(
        json,
        "  \"incremental_moves\": {INCR_MOVES},\n  \"baseline_moves\": {BASELINE_MOVES},"
    )
    .unwrap();
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"name\": \"{}\",", r.name).unwrap();
        writeln!(json, "      \"gates\": {},", r.gates).unwrap();
        writeln!(
            json,
            "      \"full_ssta_analyze_us\": {:.2},",
            r.full_analyze_us
        )
        .unwrap();
        writeln!(
            json,
            "      \"incremental_us_per_move\": {:.3},",
            r.incr_us_per_move
        )
        .unwrap();
        writeln!(json, "      \"moves_per_sec\": {:.0},", r.moves_per_sec).unwrap();
        writeln!(json, "      \"peak_cone_size\": {},", r.peak_cone).unwrap();
        writeln!(json, "      \"mean_cone_size\": {:.1},", r.mean_cone).unwrap();
        writeln!(
            json,
            "      \"full_reanalysis_us_per_move\": {:.2},",
            r.baseline_us_per_move
        )
        .unwrap();
        writeln!(json, "      \"incremental_speedup\": {:.2},", r.speedup).unwrap();
        writeln!(
            json,
            "      \"statistical_optimizer_ms\": {:.2},",
            r.optimizer_run_ms
        )
        .unwrap();
        writeln!(json, "      \"optimizer_passes\": {},", r.optimizer_passes).unwrap();
        writeln!(json, "      \"statistical_for_yield_ms\": {:.2}", r.flow_ms).unwrap();
        write!(
            json,
            "    }}{}",
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    match peak_rss_bytes() {
        Some(b) => writeln!(json, "  \"peak_rss_bytes\": {b}").unwrap(),
        None => json.push_str("  \"peak_rss_bytes\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_opt.json");
    obs::flush();
    eprintln!("wrote {out_path}");
}
