//! Warm-vs-cold benchmark for the engine's session cache.
//!
//! For each circuit this times one *cold* `run_comparison` (empty engine:
//! netlist build, correlation-model factorization, sizing, both optimizers)
//! against *warm* repeats of the same request through the same engine
//! (session-cache hit + result-memo hit), and records the speedup.
//!
//! Results land in `BENCH_engine.json` (or the path given as the first CLI
//! argument):
//!
//! ```text
//! cargo run --release -p statleak-bench --bin engine_perf [out.json]
//! ```

use statleak_core::flows::FlowConfig;
use statleak_engine::{Engine, Json};
use std::time::Instant;

/// Warm repetitions for a stable mean (each is a full request through the
/// engine: key hash, LRU lookup, memo lookup, result clone).
const WARM_REPS: usize = 100;

struct Row {
    name: &'static str,
    gates: usize,
    cold_ms: f64,
    warm_us: f64,
    speedup: f64,
}

fn measure(name: &'static str) -> Row {
    let cfg = FlowConfig::builder(name)
        .mc_samples(0)
        .build()
        .expect("suite configs are valid");
    let engine = Engine::new(8);

    let start = Instant::now();
    let outcome = engine
        .session(&cfg)
        .and_then(|s| s.run_comparison())
        .expect("suite circuits are optimizable");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    let gates = {
        let session = engine.session(&cfg).expect("cached");
        session.setup().base.circuit().num_gates()
    };

    let start = Instant::now();
    for _ in 0..WARM_REPS {
        let warm = engine
            .session(&cfg)
            .and_then(|s| s.run_comparison())
            .expect("cached request succeeds");
        assert_eq!(
            warm.statistical.leakage_p95, outcome.statistical.leakage_p95,
            "warm result must equal the cold one"
        );
    }
    let warm_us = start.elapsed().as_secs_f64() * 1e6 / WARM_REPS as f64;

    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "only the cold request may miss");

    Row {
        name,
        gates,
        cold_ms,
        warm_us,
        speedup: cold_ms * 1e3 / warm_us,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut rows = Vec::new();
    for name in ["c432", "c1908", "c7552"] {
        eprintln!("measuring {name} (cold run includes both optimizers) ...");
        let row = measure(name);
        eprintln!(
            "  {name}: cold {:.0} ms | warm {:.1} us/request | speedup {:.0}x",
            row.cold_ms, row.warm_us, row.speedup
        );
        rows.push(row);
    }

    let json = Json::obj(vec![
        (
            "harness",
            Json::Str("cargo run --release -p statleak-bench --bin engine_perf".to_string()),
        ),
        ("warm_reps", Json::Num(WARM_REPS as f64)),
        (
            "benchmarks",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.to_string())),
                            ("gates", Json::Num(r.gates as f64)),
                            ("cold_run_comparison_ms", Json::Num(round2(r.cold_ms))),
                            ("warm_request_us", Json::Num(round2(r.warm_us))),
                            ("warm_speedup", Json::Num(round2(r.speedup))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_engine.json");
    eprintln!("wrote {out_path}");
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}
