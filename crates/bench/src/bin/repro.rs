//! `repro` — regenerates every table and figure of the reproduction.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--out DIR] [--fresh] [--no-checkpoint]
//!       [t1|t2|t3|t4|t5|t6|f1|f2|f3|f4|f5|a1|a2|a3|a4|a5|a6|all]
//! ```
//!
//! Each experiment prints a console table and writes a CSV under the
//! output directory (default `results/`). `--quick` runs the small/medium
//! circuits with reduced Monte-Carlo sampling; the default runs the full
//! ISCAS85-class suite. See `EXPERIMENTS.md` for the experiment index.
//!
//! ## Crash safety
//!
//! Every `(experiment, circuit)` cell is checkpointed atomically under
//! `<out>/.checkpoint/` as soon as it completes (see
//! [`statleak_bench::checkpoint`]). If a run is killed, re-invoking the
//! same command resumes with only the unfinished cells and produces
//! byte-identical CSVs to an uninterrupted run. Checkpoints are cleared
//! when the requested experiments finish. `--fresh` discards any existing
//! checkpoint first; `--no-checkpoint` disables the mechanism entirely.
//!
//! ## Graceful degradation
//!
//! A circuit that fails mid-suite (infeasible sizing, correlation-model
//! breakdown) no longer aborts the remaining benchmarks: it is recorded as
//! a structured failure row (`circuit, -, -, ...`) in the experiment's
//! table and logged to `<out>/failures.csv` with its stable error class.
//! The process exits 0 when every cell succeeded, 1 when any cell failed,
//! and 2 on bad command-line usage.

use statleak_bench::checkpoint::{CellResult, Checkpoint};
use statleak_bench::{full_suite, quick_suite};
use statleak_core::flows::{FlowConfig, FlowError, LibrarySpec, SweepSpec};
use statleak_core::report::{fmt_pct, fmt_power, Table};
use statleak_engine::Engine;
use statleak_netlist::benchmarks;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Everything `repro` knows how to run, in run order.
const EXPERIMENTS: [&str; 17] = [
    "t1", "t2", "t3", "t4", "t5", "t6", "f1", "f2", "f3", "f4", "f5", "a1", "a2", "a3", "a4", "a5",
    "a6",
];

struct Options {
    quick: bool,
    out: PathBuf,
    which: Vec<String>,
    fresh: bool,
    checkpoint: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut which = Vec::new();
    let mut fresh = false;
    let mut checkpoint = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--fresh" => fresh = true,
            "--no-checkpoint" => checkpoint = false,
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return Err("flag `--out` requires a directory".into()),
            },
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--out DIR] [--fresh] [--no-checkpoint] \
                     [t1|t2|t3|t4|t5|t6|f1|f2|f3|f4|f5|a1|a2|a3|a4|a5|a6|all]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (see --help)"));
            }
            other if other == "all" || EXPERIMENTS.contains(&other) => {
                which.push(other.to_string());
            }
            other => {
                return Err(format!(
                    "unknown experiment `{other}` (known: all, {})",
                    EXPERIMENTS.join(", ")
                ));
            }
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    Ok(Options {
        quick,
        out,
        which,
        fresh,
        checkpoint,
    })
}

/// One recorded cell failure, mirrored into `<out>/failures.csv`.
struct FailureRecord {
    experiment: String,
    cell: String,
    class: String,
    message: String,
}

/// Shared run state: options, the checkpoint manifest, and the failure log.
struct Ctx {
    opts: Options,
    ckpt: Checkpoint,
    failures: Vec<FailureRecord>,
}

impl Ctx {
    /// Runs one checkpointable `(experiment, cell)` unit: restores the
    /// recorded outcome if present, otherwise computes, checkpoints, and
    /// applies it. A failed cell becomes a structured failure row and the
    /// suite continues.
    fn cell(
        &mut self,
        experiment: &str,
        name: &str,
        table: &mut Table,
        compute: impl FnOnce() -> Result<Vec<Vec<String>>, FlowError>,
    ) {
        let result = match self.ckpt.load(experiment, name) {
            Some(r) => {
                eprintln!("{experiment}/{name}: restored from checkpoint");
                r
            }
            None => {
                let r = match compute() {
                    Ok(rows) => CellResult::Rows(rows),
                    Err(e) => {
                        eprintln!("{name}: {e} (recorded as failure, suite continues)");
                        CellResult::Failed {
                            class: e.class().to_string(),
                            message: e.to_string(),
                        }
                    }
                };
                if let Err(e) = self.ckpt.store(experiment, name, &r) {
                    eprintln!("warning: cannot checkpoint {experiment}/{name}: {e}");
                }
                r
            }
        };
        match result {
            CellResult::Rows(rows) => {
                for row in &rows {
                    table.row(row);
                }
            }
            CellResult::Failed { class, message } => {
                table.failure_row(name);
                self.failures.push(FailureRecord {
                    experiment: experiment.to_string(),
                    cell: name.to_string(),
                    class,
                    message,
                });
            }
        }
    }

    fn save(&self, name: &str, table: &Table) {
        let path = self.opts.out.join(format!("{name}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }

    fn write_failure_log(&self) {
        let mut t = Table::new(&["experiment", "circuit", "class", "message"]);
        for f in &self.failures {
            t.row(&[
                f.experiment.clone(),
                f.cell.clone(),
                f.class.clone(),
                f.message.clone(),
            ]);
        }
        self.save("failures", &t);
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("repro: usage error: {msg}");
            return ExitCode::from(2);
        }
    };
    // The manifest key covers everything that changes cell contents, so a
    // --quick run can never resume from full-suite cells (or vice versa).
    let config_key = format!("repro-v1 quick={}", opts.quick);
    let ckpt = if opts.checkpoint {
        match Checkpoint::open(&opts.out, &config_key) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warning: cannot open checkpoint manifest: {e}; resume disabled");
                Checkpoint::disabled()
            }
        }
    } else {
        Checkpoint::disabled()
    };
    if opts.fresh {
        if let Err(e) = ckpt.clear_all() {
            eprintln!("warning: --fresh could not clear the checkpoint: {e}");
        }
    }
    let mut ctx = Ctx {
        opts,
        ckpt,
        failures: Vec::new(),
    };

    let run_all = ctx.opts.which.iter().any(|w| w == "all");
    let wants = |k: &str| run_all || ctx.opts.which.iter().any(|w| w == k);
    let requested: Vec<&str> = EXPERIMENTS.iter().copied().filter(|e| wants(e)).collect();
    let t0 = Instant::now();
    for exp in &requested {
        match *exp {
            "t1" => t1(&mut ctx),
            "t2" => t2(&mut ctx),
            "t3" => t3(&mut ctx),
            "t4" => t4(&mut ctx),
            "t5" => t5(&mut ctx),
            "t6" => t6(&mut ctx),
            "f1" => f1(&mut ctx),
            "f2" => f2(&mut ctx),
            "f3" => f3(&mut ctx),
            "f4" => f4(&mut ctx),
            "f5" => f5(&mut ctx),
            "a1" => a1(&mut ctx),
            "a2" => a2(&mut ctx),
            "a3" => a3(&mut ctx),
            "a4" => a4(&mut ctx),
            "a5" => a5(&mut ctx),
            "a6" => a6(&mut ctx),
            _ => unreachable!("EXPERIMENTS is exhaustive"),
        }
    }
    ctx.write_failure_log();
    // The run completed everything that was asked for: drop those cells so
    // the next invocation recomputes instead of replaying a stale cache.
    for exp in &requested {
        if let Err(e) = ctx.ckpt.clear_experiment(exp) {
            eprintln!("warning: could not clear checkpoint for {exp}: {e}");
        }
    }
    eprintln!("\ntotal time: {:.1}s", t0.elapsed().as_secs_f64());
    if ctx.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} cell(s) failed; see {}",
            ctx.failures.len(),
            ctx.opts.out.join("failures.csv").display()
        );
        ExitCode::FAILURE
    }
}

fn suite(opts: &Options) -> Vec<&'static str> {
    if opts.quick {
        quick_suite()
    } else {
        full_suite()
    }
}

fn mc_samples(opts: &Options) -> usize {
    if opts.quick {
        500
    } else {
        2000
    }
}

/// T1 — benchmark characteristics.
fn t1(ctx: &mut Ctx) {
    println!("\n== T1: benchmark characteristics ==");
    let mut t = Table::new(&["circuit", "inputs", "outputs", "gates", "depth", "function"]);
    for s in &benchmarks::SUITE {
        ctx.cell("t1", s.name, &mut t, move || {
            let c = benchmarks::by_name(s.name)
                .ok_or_else(|| FlowError::UnknownBenchmark(s.name.to_string()))?;
            let st = c.stats();
            Ok(vec![vec![
                s.name.to_string(),
                st.inputs.to_string(),
                st.outputs.to_string(),
                st.gates.to_string(),
                st.depth.to_string(),
                s.function.to_string(),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("t1_benchmarks", &t);
}

/// T2 — headline comparison at equal timing yield.
fn t2(ctx: &mut Ctx) {
    println!("\n== T2: leakage at equal timing yield (T = 1.20*Dmin, eta = 0.95) ==");
    let mut t = Table::new(&[
        "circuit",
        "base p95",
        "det p95",
        "stat p95",
        "extra saving",
        "det yield",
        "stat yield",
        "mc stat yield",
        "mc yield 95% CI",
        "det s",
        "stat s",
    ]);
    let samples = mc_samples(&ctx.opts);
    for name in suite(&ctx.opts) {
        ctx.cell("t2", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(samples).build()?;
            let o = Engine::global().session(&cfg)?.run_comparison()?;
            println!(
                "{name}: stat saves an extra {} over deterministic",
                fmt_pct(o.stat_extra_saving)
            );
            Ok(vec![vec![
                name.to_string(),
                fmt_power(o.baseline.leakage_p95),
                fmt_power(o.deterministic.leakage_p95),
                fmt_power(o.statistical.leakage_p95),
                fmt_pct(o.stat_extra_saving),
                format!("{:.3}", o.deterministic.timing_yield),
                format!("{:.3}", o.statistical.timing_yield),
                o.statistical
                    .mc_yield
                    .map_or("-".into(), |y| format!("{y:.3}")),
                o.statistical
                    .mc_yield_ci
                    .map_or("-".into(), |ci| format!("[{:.3}, {:.3}]", ci.lo, ci.hi)),
                format!("{:.1}", o.deterministic.runtime_s),
                format!("{:.1}", o.statistical.runtime_s),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("t2_comparison", &t);
}

/// T3 — savings vs delay-constraint tightness.
fn t3(ctx: &mut Ctx) {
    println!("\n== T3: savings vs clock tightness ==");
    let circuits = if ctx.opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let factors = [1.05, 1.10, 1.15, 1.25];
    let mut t = Table::new(&[
        "circuit",
        "T/Dmin",
        "det p95",
        "stat p95",
        "det yield",
        "stat yield",
        "extra saving",
    ]);
    for name in circuits {
        ctx.cell("t3", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
            let points = Engine::global()
                .session(&cfg)?
                .sweep(&SweepSpec::SlackFactor(factors.to_vec()))?;
            Ok(points
                .iter()
                .map(|p| {
                    vec![
                        name.to_string(),
                        format!("{:.2}", p.x),
                        fmt_power(p.det_p95),
                        fmt_power(p.stat_p95),
                        format!("{:.3}", p.det_yield),
                        format!("{:.3}", p.stat_yield),
                        fmt_pct(p.extra_saving),
                    ]
                })
                .collect())
        });
    }
    print!("{}", t.render());
    ctx.save("t3_tightness", &t);
}

/// T4 — analytical vs Monte-Carlo accuracy.
fn t4(ctx: &mut Ctx) {
    println!("\n== T4: SSTA / leakage-lognormal accuracy vs Monte Carlo ==");
    let mut t = Table::new(&[
        "circuit",
        "delay mean err",
        "delay sigma err",
        "yield err",
        "mc yield 95% CI",
        "leak mean err",
        "leak p95 err",
    ]);
    let samples = mc_samples(&ctx.opts);
    for name in suite(&ctx.opts) {
        ctx.cell("t4", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(samples).build()?;
            let v = Engine::global().session(&cfg)?.mc_validation()?;
            Ok(vec![vec![
                name.to_string(),
                fmt_pct((v.ssta_mean - v.mc_mean).abs() / v.mc_mean),
                fmt_pct((v.ssta_sigma - v.mc_sigma).abs() / v.mc_sigma),
                format!("{:.3}", (v.ssta_yield - v.mc_yield).abs()),
                format!("[{:.3}, {:.3}]", v.mc_yield_ci.lo, v.mc_yield_ci.hi),
                fmt_pct((v.leak_mean - v.mc_leak_mean).abs() / v.mc_leak_mean),
                fmt_pct((v.leak_p95 - v.mc_leak_p95).abs() / v.mc_leak_p95),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("t4_mc_validation", &t);
}

/// T5 — joint timing/leakage parametric yield (extension experiment).
fn t5(ctx: &mut Ctx) {
    use statleak_core::joint::JointYield;
    use statleak_leakage::LeakageAnalysis;
    use statleak_mc::{McConfig, MonteCarlo};
    use statleak_opt::sizing;
    use statleak_ssta::Ssta;
    println!("\n== T5: joint timing+leakage yield (bivariate model vs MC) ==");
    let mut t = Table::new(&[
        "circuit",
        "corr(D,lnI)",
        "timing yield",
        "leak yield",
        "product",
        "joint analytic",
        "joint MC",
    ]);
    let samples = mc_samples(&ctx.opts);
    for name in suite(&ctx.opts) {
        ctx.cell("t5", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(samples).build()?;
            let session = Engine::global().session(&cfg)?;
            let setup = session.setup();
            let mut design = setup.base.clone();
            sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
            let j = JointYield::analyze(&design, &setup.fm);
            let ssta = Ssta::analyze(&design, &setup.fm);
            let t_clk = ssta.clock_for_yield(0.95);
            let i_max = LeakageAnalysis::analyze(&design, &setup.fm)
                .total_current()
                .quantile(0.90);
            let mc = MonteCarlo::new(McConfig {
                samples: cfg.mc_samples.max(500),
                ..Default::default()
            })
            .run(&design, &setup.fm);
            Ok(vec![vec![
                name.to_string(),
                format!("{:.2}", j.correlation()),
                format!("{:.3}", j.timing_yield(t_clk)),
                format!("{:.3}", j.leakage_yield(i_max)),
                format!("{:.3}", j.timing_yield(t_clk) * j.leakage_yield(i_max)),
                format!("{:.3}", j.joint_yield(t_clk, i_max)),
                format!("{:.3}", mc.joint_yield(t_clk, i_max)),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("t5_joint_yield", &t);
}

/// F1 — leakage distribution before/after optimization.
fn f1(ctx: &mut Ctx) {
    println!("\n== F1: leakage distribution, baseline vs statistical (c880) ==");
    let samples = if ctx.opts.quick { 1000 } else { 5000 };
    let mut t = Table::new(&[
        "bin",
        "baseline center (W)",
        "baseline density",
        "optimized center (W)",
        "optimized density",
    ]);
    ctx.cell("f1", "c880", &mut t, move || {
        let cfg = FlowConfig::builder("c880").mc_samples(samples).build()?;
        let d = Engine::global().session(&cfg)?.distribution()?;
        let bins = 30;
        let hb = d.baseline_histogram(bins);
        let ho = d.optimized_histogram(bins);
        println!("baseline (analytic {}):", d.baseline_analytic);
        print!("{}", hb.to_ascii(40));
        println!("optimized (analytic {}):", d.optimized_analytic);
        print!("{}", ho.to_ascii(40));
        Ok((0..bins)
            .map(|i| {
                vec![
                    i.to_string(),
                    format!("{:.4e}", hb.bin_center(i)),
                    format!("{:.4e}", hb.density(i)),
                    format!("{:.4e}", ho.bin_center(i)),
                    format!("{:.4e}", ho.density(i)),
                ]
            })
            .collect())
    });
    ctx.save("f1_distribution", &t);
}

/// F2 — leakage–delay trade-off curves.
fn f2(ctx: &mut Ctx) {
    let name = if ctx.opts.quick { "c499" } else { "c1908" };
    println!("\n== F2: leakage-delay trade-off ({name}) ==");
    let factors = [1.05, 1.08, 1.12, 1.16, 1.20, 1.30, 1.40];
    let mut t = Table::new(&[
        "T/Dmin",
        "det p95 (W)",
        "stat p95 (W)",
        "det yield",
        "stat yield",
    ]);
    ctx.cell("f2", name, &mut t, move || {
        let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
        let points = Engine::global()
            .session(&cfg)?
            .sweep(&SweepSpec::SlackFactor(factors.to_vec()))?;
        for p in &points {
            println!(
                "T/Dmin {:.2}: det {} stat {} (extra {})",
                p.x,
                fmt_power(p.det_p95),
                fmt_power(p.stat_p95),
                fmt_pct(p.extra_saving)
            );
        }
        Ok(points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.x),
                    format!("{:.4e}", p.det_p95),
                    format!("{:.4e}", p.stat_p95),
                    format!("{:.3}", p.det_yield),
                    format!("{:.3}", p.stat_yield),
                ]
            })
            .collect())
    });
    ctx.save("f2_tradeoff", &t);
}

/// F3 — yield vs clock period for the three designs.
fn f3(ctx: &mut Ctx) {
    let name = if ctx.opts.quick { "c880" } else { "c2670" };
    println!("\n== F3: timing yield vs clock ({name}) ==");
    let grid: Vec<f64> = (0..=20).map(|i| 1.00 + 0.025 * i as f64).collect();
    let mut t = Table::new(&["T/Dmin", "baseline", "deterministic", "statistical"]);
    ctx.cell("f3", name, &mut t, move || {
        let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
        let rows = Engine::global().session(&cfg)?.yield_curves(&grid)?;
        Ok(rows
            .iter()
            .map(|(k, yb, yd, ys)| {
                vec![
                    format!("{k:.3}"),
                    format!("{yb:.4}"),
                    format!("{yd:.4}"),
                    format!("{ys:.4}"),
                ]
            })
            .collect())
    });
    print!("{}", t.render());
    ctx.save("f3_yield_curves", &t);
}

/// F4 — statistical advantage vs variation magnitude.
fn f4(ctx: &mut Ctx) {
    let name = if ctx.opts.quick { "c499" } else { "c1355" };
    println!("\n== F4: extra saving vs sigma(L)/L ({name}) ==");
    let sigmas = [0.025, 0.05, 0.075, 0.10];
    let mut t = Table::new(&[
        "sigma_L",
        "det p95 (W)",
        "stat p95 (W)",
        "det yield",
        "stat yield",
        "extra saving",
    ]);
    ctx.cell("f4", name, &mut t, move || {
        let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
        let points = Engine::global()
            .session(&cfg)?
            .sweep(&SweepSpec::SigmaL(sigmas.to_vec()))?;
        Ok(points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.3}", p.x),
                    format!("{:.4e}", p.det_p95),
                    format!("{:.4e}", p.stat_p95),
                    format!("{:.3}", p.det_yield),
                    format!("{:.3}", p.stat_yield),
                    fmt_pct(p.extra_saving),
                ]
            })
            .collect())
    });
    print!("{}", t.render());
    ctx.save("f4_sigma_sweep", &t);
}

/// F5 — optimizer convergence trace.
fn f5(ctx: &mut Ctx) {
    let name = if ctx.opts.quick { "c880" } else { "c3540" };
    println!("\n== F5: statistical-optimizer convergence ({name}) ==");
    let mut t = Table::new(&["accepted move", "objective (W)", "yield"]);
    ctx.cell("f5", name, &mut t, move || {
        let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
        let session = Engine::global().session(&cfg)?;
        let setup = session.setup();
        let out =
            statleak_opt::statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
        // Subsample long traces to <= 200 rows.
        let trace = &out.report.trace;
        let step = (trace.len() / 200).max(1);
        println!(
            "{} accepted moves, objective {} -> {}",
            trace.last().map_or(0, |p| p.accepted_moves),
            fmt_power(out.report.initial_objective),
            fmt_power(out.report.final_objective)
        );
        Ok(trace
            .iter()
            .step_by(step)
            .map(|p| {
                vec![
                    p.accepted_moves.to_string(),
                    format!("{:.4e}", p.objective),
                    format!("{:.4}", p.timing_yield),
                ]
            })
            .collect())
    });
    ctx.save("f5_convergence", &t);
}

/// A1 — modeling ablations.
fn a1(ctx: &mut Ctx) {
    println!("\n== A1: modeling ablations (c880) ==");
    let mut t = Table::new(&["variant", "delay sigma (ps)", "leak p95 (W)", "leak cv"]);
    ctx.cell("a1", "c880", &mut t, move || {
        let cfg = FlowConfig::builder("c880").mc_samples(0).build()?;
        let rows = Engine::global().session(&cfg)?.ablation()?;
        Ok(rows
            .into_iter()
            .map(|r| {
                vec![
                    r.variant,
                    format!("{:.2}", r.delay_sigma),
                    format!("{:.4e}", r.leak_p95),
                    format!("{:.3}", r.leak_cv),
                ]
            })
            .collect())
    });
    print!("{}", t.render());
    ctx.save("a1_ablation", &t);
}

/// A2 — the triple-Vth extension: a third threshold flavor vs the paper's
/// dual-Vth setup, at equal timing yield.
fn a2(ctx: &mut Ctx) {
    use statleak_opt::{statistical_flow, StatisticalOptimizer};
    use statleak_tech::VthClass;
    println!("\n== A2: dual-Vth vs triple-Vth statistical optimization ==");
    let circuits = if ctx.opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let mut t = Table::new(&[
        "circuit",
        "dual p95",
        "triple p95",
        "gain",
        "low/mid/high gates",
    ]);
    for name in circuits {
        ctx.cell("a2", name, &mut t, move || {
            let cfg = FlowConfig::builder(name)
                .mc_samples(0)
                .slack_factor(1.12)
                .build()?;
            let session = Engine::global().session(&cfg)?;
            let setup = session.setup();
            let dual = statistical_flow(
                &setup.base,
                &setup.fm,
                &StatisticalOptimizer::new(setup.t_clk).with_yield_target(cfg.eta),
            )?;
            let triple = statistical_flow(
                &setup.base,
                &setup.fm,
                &StatisticalOptimizer::new(setup.t_clk)
                    .with_yield_target(cfg.eta)
                    .with_triple_vth(),
            )?;
            Ok(vec![vec![
                name.to_string(),
                fmt_power(dual.report.final_objective),
                fmt_power(triple.report.final_objective),
                fmt_pct(1.0 - triple.report.final_objective / dual.report.final_objective),
                format!(
                    "{}/{}/{}",
                    triple.design.vth_count(VthClass::Low),
                    triple.design.vth_count(VthClass::Mid),
                    triple.design.vth_count(VthClass::High)
                ),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("a2_triple_vth", &t);
}

/// A3 — post-silicon adaptive body bias on top of the statistically
/// optimized design (extension experiment).
fn a3(ctx: &mut Ctx) {
    use statleak_mc::{AbbConfig, McConfig, MonteCarlo};
    use statleak_opt::statistical_for_yield;
    use statleak_ssta::Ssta;
    println!("\n== A3: adaptive body bias on the optimized design ==");
    let circuits = if ctx.opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1355"]
    };
    let mut t = Table::new(&[
        "circuit",
        "clock (ps)",
        "yield no-ABB",
        "yield ABB",
        "mean leak no-ABB",
        "mean leak ABB",
    ]);
    let samples = mc_samples(&ctx.opts);
    for name in circuits {
        ctx.cell("a3", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
            let session = Engine::global().session(&cfg)?;
            let setup = session.setup();
            let out = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
            // Stress the design at a clock tighter than it was built for, so
            // there are slow die for forward bias to rescue.
            let ssta = Ssta::analyze(&out.design, &setup.fm);
            let t_stress = ssta.clock_for_yield(0.85);
            let r = MonteCarlo::new(McConfig {
                samples,
                ..Default::default()
            })
            .run_abb(&out.design, &setup.fm, &AbbConfig::standard(t_stress));
            let vdd = out.design.tech().vdd;
            Ok(vec![vec![
                name.to_string(),
                format!("{t_stress:.1}"),
                format!("{:.3}", r.yield_without_abb()),
                format!("{:.3}", r.yield_with_abb()),
                fmt_power(r.leakage_summary_unbiased().mean * vdd),
                fmt_power(r.leakage_summary().mean * vdd),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("a3_body_bias", &t);
}

/// T6 — sequential (ISCAS89-class) circuits with placement-driven wire
/// loads: the headline comparison on FF-cut cores (extension experiment).
fn t6(ctx: &mut Ctx) {
    use statleak_netlist::benchmarks::SEQ_SUITE;
    println!("\n== T6: sequential suite (FF-cut cores, wire loads) ==");
    let quick_names = ["s27", "s344", "s526"];
    let specs: Vec<&statleak_netlist::benchmarks::SeqBenchmarkSpec> = SEQ_SUITE
        .iter()
        .filter(|s| !ctx.opts.quick || quick_names.contains(&s.name))
        .collect();
    let mut t = Table::new(&[
        "circuit",
        "gates",
        "dffs",
        "det p95",
        "stat p95",
        "extra saving",
        "stat yield",
    ]);
    for spec in specs {
        ctx.cell("t6", spec.name, &mut t, move || {
            let cfg = FlowConfig::builder(spec.name)
                .mc_samples(0)
                .wire_loads(true)
                .build()?;
            let o = Engine::global().session(&cfg)?.run_comparison()?;
            Ok(vec![vec![
                spec.name.to_string(),
                spec.gates.to_string(),
                spec.dffs.to_string(),
                fmt_power(o.deterministic.leakage_p95),
                fmt_power(o.statistical.leakage_p95),
                fmt_pct(o.stat_extra_saving),
                format!("{:.3}", o.statistical.timing_yield),
            ]])
        });
    }
    print!("{}", t.render());
    ctx.save("t6_sequential", &t);
}

/// A4 — correlation-model comparison: grid-Cholesky kernel vs the
/// Agarwal–Blaauw quadtree decomposition (extension experiment). Both are
/// checked against Monte Carlo run through their own factor model.
fn a4(ctx: &mut Ctx) {
    use statleak_mc::{McConfig, MonteCarlo};
    use statleak_netlist::placement::Placement;
    use statleak_opt::sizing;
    use statleak_ssta::Ssta;
    use statleak_tech::{Design, FactorModel, Technology};
    println!("\n== A4: grid-Cholesky vs quadtree correlation model ==");
    let circuits = if ctx.opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1355"]
    };
    let mut t = Table::new(&[
        "circuit",
        "model",
        "factors",
        "delay sigma (ps)",
        "MC delay sigma",
        "leak p95 (uW)",
        "MC leak p95",
    ]);
    let samples = mc_samples(&ctx.opts);
    for name in circuits {
        ctx.cell("a4", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(samples).build()?;
            let session = Engine::global().session(&cfg)?;
            let setup = session.setup();
            let placement = Placement::by_level(&setup.circuit);
            let tech = Technology::ptm100();
            let fm_quad =
                FactorModel::build_quadtree(&setup.circuit, &placement, &tech, &cfg.variation, 2);
            let mut design = Design::new(std::sync::Arc::clone(&setup.circuit), tech);
            sizing::size_for_delay(&mut design, setup.t_clk)?;
            let mut rows = Vec::new();
            for (label, fm) in [("grid 4x4", &setup.fm), ("quadtree L2", &fm_quad)] {
                let ssta = Ssta::analyze(&design, fm);
                let leak = statleak_leakage::LeakageAnalysis::analyze(&design, fm);
                let mc = MonteCarlo::new(McConfig {
                    samples: cfg.mc_samples.max(500),
                    ..Default::default()
                })
                .run(&design, fm);
                let vdd = design.tech().vdd;
                rows.push(vec![
                    name.to_string(),
                    label.to_string(),
                    fm.num_shared().to_string(),
                    format!("{:.2}", ssta.circuit_delay().std()),
                    format!("{:.2}", mc.delay_summary().std),
                    format!("{:.2}", leak.total_power(&design).quantile(0.95) * 1e6),
                    format!("{:.2}", mc.leakage_percentile(0.95) * vdd * 1e6),
                ]);
            }
            Ok(rows)
        });
    }
    print!("{}", t.render());
    ctx.save("a4_correlation_models", &t);
}

/// A5 — variance-reduced far-tail yield estimation: plain counting MC,
/// Sobol QMC, and ISLE-style importance sampling at the 99.9%-yield clock,
/// each on the same evaluation budget (extension experiment). The clock is
/// chosen so the analytic (SSTA) miss probability is exactly 1e-3; a plain
/// run of this size sees a handful of misses at best, while the shifted
/// estimator resolves the tail with a tight normal-theory CI.
fn a5(ctx: &mut Ctx) {
    use statleak_mc::{McConfig, MonteCarlo, SamplingScheme};
    use statleak_ssta::Ssta;
    println!("\n== A5: variance-reduced far-tail yield (plain vs QMC vs IS) ==");
    let circuits = if ctx.opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let mut t = Table::new(&[
        "circuit",
        "scheme",
        "samples",
        "miss est",
        "analytic miss",
        "miss 95% CI",
        "ess",
    ]);
    let samples = mc_samples(&ctx.opts).max(1000);
    for name in circuits {
        ctx.cell("a5", name, &mut t, move || {
            let cfg = FlowConfig::builder(name).mc_samples(0).build()?;
            let session = Engine::global().session(&cfg)?;
            let setup = session.setup();
            let ssta = Ssta::analyze(&setup.base, &setup.fm);
            let t_clk = ssta.clock_for_yield(0.999);
            let analytic_miss = 1.0 - 0.999;
            let mut rows = Vec::new();
            for scheme in ["plain", "sobol", "plain+is"] {
                let mc = MonteCarlo::new(
                    McConfig {
                        samples,
                        ..Default::default()
                    }
                    .with_scheme(scheme.parse::<SamplingScheme>().expect("valid scheme")),
                );
                let est = mc.timing_yield_estimate(&setup.base, &setup.fm, t_clk);
                rows.push(vec![
                    name.to_string(),
                    scheme.to_string(),
                    samples.to_string(),
                    format!("{:.3e}", est.miss_probability),
                    format!("{analytic_miss:.3e}"),
                    format!("[{:.3e}, {:.3e}]", 1.0 - est.ci.hi, 1.0 - est.ci.lo),
                    format!("{:.0}", est.ess),
                ]);
            }
            Ok(rows)
        });
    }
    print!("{}", t.render());
    ctx.save("a5_variance_reduction", &t);
}

/// A6 — Liberty corner libraries vs statistical optimization: the full
/// comparison flow re-run through the golden SS/TT/FF corner files under
/// `libs/` (see `cargo run --example gen_corner_libs`), against the
/// builtin closed-form models. Corner files move every cell number
/// coherently, so the statistical optimum shifts with the corner while
/// the statistical-over-deterministic advantage persists at each one —
/// no single corner reproduces the distribution the statistical flow
/// optimizes against.
fn a6(ctx: &mut Ctx) {
    println!("\n== A6: Liberty corner libraries vs statistical optimization ==");
    let circuits = if ctx.opts.quick {
        vec!["c17", "c432"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let mut t = Table::new(&[
        "circuit",
        "library",
        "stat p95",
        "stat yield",
        "extra saving",
        "high-vth",
    ]);
    let samples = mc_samples(&ctx.opts);
    let lib = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../libs/statleak_mini.lib");
    for name in circuits {
        let lib = lib.clone();
        ctx.cell("a6", name, &mut t, move || {
            let corners = [
                ("builtin", LibrarySpec::Builtin),
                (
                    "tt",
                    LibrarySpec::Liberty {
                        path: lib.clone(),
                        corner: None,
                    },
                ),
                (
                    "ss",
                    LibrarySpec::Liberty {
                        path: lib.clone(),
                        corner: Some("ss".into()),
                    },
                ),
                (
                    "ff",
                    LibrarySpec::Liberty {
                        path: lib.clone(),
                        corner: Some("ff".into()),
                    },
                ),
            ];
            let mut rows = Vec::new();
            for (label, spec) in corners {
                let cfg = FlowConfig::builder(name)
                    .mc_samples(samples)
                    .library(spec)
                    .build()?;
                let o = Engine::global().session(&cfg)?.run_comparison()?;
                rows.push(vec![
                    name.to_string(),
                    label.to_string(),
                    fmt_power(o.statistical.leakage_p95),
                    format!("{:.3}", o.statistical.timing_yield),
                    fmt_pct(o.stat_extra_saving),
                    o.statistical.high_vth.to_string(),
                ]);
            }
            Ok(rows)
        });
    }
    print!("{}", t.render());
    ctx.save("a6_corner_libraries", &t);
}
