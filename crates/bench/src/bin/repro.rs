//! `repro` — regenerates every table and figure of the reproduction.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--out DIR] [t1|t2|t3|t4|t5|t6|f1|f2|f3|f4|f5|a1|a2|a3|a4|all]
//! ```
//!
//! Each experiment prints a console table and writes a CSV under the
//! output directory (default `results/`). `--quick` runs the small/medium
//! circuits with reduced Monte-Carlo sampling; the default runs the full
//! ISCAS85-class suite. See `EXPERIMENTS.md` for the experiment index.

use statleak_bench::{full_suite, quick_suite};
use statleak_core::flows::{self, FlowConfig};
use statleak_core::report::{fmt_pct, fmt_power, Table};
use statleak_netlist::benchmarks;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    quick: bool,
    out: PathBuf,
    which: Vec<String>,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut which = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--out DIR] [t1|t2|t3|t4|t5|t6|f1|f2|f3|f4|f5|a1|a2|a3|a4|all]"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    Options { quick, out, which }
}

fn main() {
    let opts = parse_args();
    let run_all = opts.which.iter().any(|w| w == "all");
    let wants = |k: &str| run_all || opts.which.iter().any(|w| w == k);
    let t0 = Instant::now();
    if wants("t1") {
        t1(&opts);
    }
    if wants("t2") {
        t2(&opts);
    }
    if wants("t3") {
        t3(&opts);
    }
    if wants("t4") {
        t4(&opts);
    }
    if wants("t5") {
        t5(&opts);
    }
    if wants("t6") {
        t6(&opts);
    }
    if wants("f1") {
        f1(&opts);
    }
    if wants("f2") {
        f2(&opts);
    }
    if wants("f3") {
        f3(&opts);
    }
    if wants("f4") {
        f4(&opts);
    }
    if wants("f5") {
        f5(&opts);
    }
    if wants("a1") {
        a1(&opts);
    }
    if wants("a2") {
        a2(&opts);
    }
    if wants("a3") {
        a3(&opts);
    }
    if wants("a4") {
        a4(&opts);
    }
    eprintln!("\ntotal time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn suite(opts: &Options) -> Vec<&'static str> {
    if opts.quick {
        quick_suite()
    } else {
        full_suite()
    }
}

fn mc_samples(opts: &Options) -> usize {
    if opts.quick {
        500
    } else {
        2000
    }
}

fn save(opts: &Options, name: &str, table: &Table) {
    let path = opts.out.join(format!("{name}.csv"));
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// T1 — benchmark characteristics.
fn t1(opts: &Options) {
    println!("\n== T1: benchmark characteristics ==");
    let mut t = Table::new(&["circuit", "inputs", "outputs", "gates", "depth", "function"]);
    for s in &benchmarks::SUITE {
        let c = benchmarks::by_name(s.name).expect("suite");
        let st = c.stats();
        t.row(&[
            s.name.to_string(),
            st.inputs.to_string(),
            st.outputs.to_string(),
            st.gates.to_string(),
            st.depth.to_string(),
            s.function.to_string(),
        ]);
    }
    print!("{}", t.render());
    save(opts, "t1_benchmarks", &t);
}

/// T2 — headline comparison at equal timing yield.
fn t2(opts: &Options) {
    println!("\n== T2: leakage at equal timing yield (T = 1.20*Dmin, eta = 0.95) ==");
    let mut t = Table::new(&[
        "circuit",
        "base p95",
        "det p95",
        "stat p95",
        "extra saving",
        "det yield",
        "stat yield",
        "mc stat yield",
        "det s",
        "stat s",
    ]);
    for name in suite(opts) {
        let cfg = FlowConfig {
            mc_samples: mc_samples(opts),
            ..FlowConfig::new(name)
        };
        let o = match flows::run_comparison(&cfg) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{name}: {e} (skipped)");
                continue;
            }
        };
        println!(
            "{name}: stat saves an extra {} over deterministic",
            fmt_pct(o.stat_extra_saving)
        );
        t.row(&[
            name.to_string(),
            fmt_power(o.baseline.leakage_p95),
            fmt_power(o.deterministic.leakage_p95),
            fmt_power(o.statistical.leakage_p95),
            fmt_pct(o.stat_extra_saving),
            format!("{:.3}", o.deterministic.timing_yield),
            format!("{:.3}", o.statistical.timing_yield),
            o.statistical
                .mc_yield
                .map_or("-".into(), |y| format!("{y:.3}")),
            format!("{:.1}", o.deterministic.runtime_s),
            format!("{:.1}", o.statistical.runtime_s),
        ]);
    }
    print!("{}", t.render());
    save(opts, "t2_comparison", &t);
}

/// T3 — savings vs delay-constraint tightness.
fn t3(opts: &Options) {
    println!("\n== T3: savings vs clock tightness ==");
    let circuits = if opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let factors = [1.05, 1.10, 1.15, 1.25];
    let mut t = Table::new(&[
        "circuit",
        "T/Dmin",
        "det p95",
        "stat p95",
        "det yield",
        "stat yield",
        "extra saving",
    ]);
    for name in circuits {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::new(name)
        };
        match flows::sweep_delay_target(&cfg, &factors) {
            Ok(points) => {
                for p in points {
                    t.row(&[
                        name.to_string(),
                        format!("{:.2}", p.x),
                        fmt_power(p.det_p95),
                        fmt_power(p.stat_p95),
                        format!("{:.3}", p.det_yield),
                        format!("{:.3}", p.stat_yield),
                        fmt_pct(p.extra_saving),
                    ]);
                }
            }
            Err(e) => eprintln!("{name}: {e} (skipped)"),
        }
    }
    print!("{}", t.render());
    save(opts, "t3_tightness", &t);
}

/// T4 — analytical vs Monte-Carlo accuracy.
fn t4(opts: &Options) {
    println!("\n== T4: SSTA / leakage-lognormal accuracy vs Monte Carlo ==");
    let mut t = Table::new(&[
        "circuit",
        "delay mean err",
        "delay sigma err",
        "yield err",
        "leak mean err",
        "leak p95 err",
    ]);
    for name in suite(opts) {
        let cfg = FlowConfig {
            mc_samples: mc_samples(opts),
            ..FlowConfig::new(name)
        };
        match flows::mc_validation(&cfg) {
            Ok(v) => t.row(&[
                name.to_string(),
                fmt_pct((v.ssta_mean - v.mc_mean).abs() / v.mc_mean),
                fmt_pct((v.ssta_sigma - v.mc_sigma).abs() / v.mc_sigma),
                format!("{:.3}", (v.ssta_yield - v.mc_yield).abs()),
                fmt_pct((v.leak_mean - v.mc_leak_mean).abs() / v.mc_leak_mean),
                fmt_pct((v.leak_p95 - v.mc_leak_p95).abs() / v.mc_leak_p95),
            ]),
            Err(e) => eprintln!("{name}: {e} (skipped)"),
        }
    }
    print!("{}", t.render());
    save(opts, "t4_mc_validation", &t);
}

/// T5 — joint timing/leakage parametric yield (extension experiment).
fn t5(opts: &Options) {
    use statleak_core::joint::JointYield;
    use statleak_leakage::LeakageAnalysis;
    use statleak_mc::{McConfig, MonteCarlo};
    use statleak_opt::sizing;
    use statleak_ssta::Ssta;
    println!("\n== T5: joint timing+leakage yield (bivariate model vs MC) ==");
    let mut t = Table::new(&[
        "circuit",
        "corr(D,lnI)",
        "timing yield",
        "leak yield",
        "product",
        "joint analytic",
        "joint MC",
    ]);
    for name in suite(opts) {
        let cfg = FlowConfig {
            mc_samples: mc_samples(opts),
            ..FlowConfig::new(name)
        };
        let setup = match flows::prepare(&cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name}: {e} (skipped)");
                continue;
            }
        };
        let mut design = setup.base.clone();
        if sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta).is_err() {
            eprintln!("{name}: sizing infeasible (skipped)");
            continue;
        }
        let j = JointYield::analyze(&design, &setup.fm);
        let ssta = Ssta::analyze(&design, &setup.fm);
        let t_clk = ssta.clock_for_yield(0.95);
        let i_max = LeakageAnalysis::analyze(&design, &setup.fm)
            .total_current()
            .quantile(0.90);
        let mc = MonteCarlo::new(McConfig {
            samples: cfg.mc_samples.max(500),
            ..Default::default()
        })
        .run(&design, &setup.fm);
        t.row(&[
            name.to_string(),
            format!("{:.2}", j.correlation()),
            format!("{:.3}", j.timing_yield(t_clk)),
            format!("{:.3}", j.leakage_yield(i_max)),
            format!("{:.3}", j.timing_yield(t_clk) * j.leakage_yield(i_max)),
            format!("{:.3}", j.joint_yield(t_clk, i_max)),
            format!("{:.3}", mc.joint_yield(t_clk, i_max)),
        ]);
    }
    print!("{}", t.render());
    save(opts, "t5_joint_yield", &t);
}

/// F1 — leakage distribution before/after optimization.
fn f1(opts: &Options) {
    println!("\n== F1: leakage distribution, baseline vs statistical (c880) ==");
    let cfg = FlowConfig {
        mc_samples: if opts.quick { 1000 } else { 5000 },
        ..FlowConfig::new("c880")
    };
    match flows::distribution(&cfg) {
        Ok(d) => {
            let bins = 30;
            let hb = d.baseline_histogram(bins);
            let ho = d.optimized_histogram(bins);
            println!("baseline (analytic {}):", d.baseline_analytic);
            print!("{}", hb.to_ascii(40));
            println!("optimized (analytic {}):", d.optimized_analytic);
            print!("{}", ho.to_ascii(40));
            let mut t = Table::new(&[
                "bin",
                "baseline center (W)",
                "baseline density",
                "optimized center (W)",
                "optimized density",
            ]);
            for i in 0..bins {
                t.row(&[
                    i.to_string(),
                    format!("{:.4e}", hb.bin_center(i)),
                    format!("{:.4e}", hb.density(i)),
                    format!("{:.4e}", ho.bin_center(i)),
                    format!("{:.4e}", ho.density(i)),
                ]);
            }
            save(opts, "f1_distribution", &t);
        }
        Err(e) => eprintln!("f1: {e} (skipped)"),
    }
}

/// F2 — leakage–delay trade-off curves.
fn f2(opts: &Options) {
    println!("\n== F2: leakage-delay trade-off (c1908) ==");
    let name = if opts.quick { "c499" } else { "c1908" };
    let cfg = FlowConfig {
        mc_samples: 0,
        ..FlowConfig::new(name)
    };
    let factors = [1.05, 1.08, 1.12, 1.16, 1.20, 1.30, 1.40];
    match flows::sweep_delay_target(&cfg, &factors) {
        Ok(points) => {
            let mut t = Table::new(&[
                "T/Dmin",
                "det p95 (W)",
                "stat p95 (W)",
                "det yield",
                "stat yield",
            ]);
            for p in &points {
                t.row(&[
                    format!("{:.2}", p.x),
                    format!("{:.4e}", p.det_p95),
                    format!("{:.4e}", p.stat_p95),
                    format!("{:.3}", p.det_yield),
                    format!("{:.3}", p.stat_yield),
                ]);
                println!(
                    "T/Dmin {:.2}: det {} stat {} (extra {})",
                    p.x,
                    fmt_power(p.det_p95),
                    fmt_power(p.stat_p95),
                    fmt_pct(p.extra_saving)
                );
            }
            save(opts, "f2_tradeoff", &t);
        }
        Err(e) => eprintln!("f2: {e} (skipped)"),
    }
}

/// F3 — yield vs clock period for the three designs.
fn f3(opts: &Options) {
    println!("\n== F3: timing yield vs clock (c2670) ==");
    let name = if opts.quick { "c880" } else { "c2670" };
    let cfg = FlowConfig {
        mc_samples: 0,
        ..FlowConfig::new(name)
    };
    let grid: Vec<f64> = (0..=20).map(|i| 1.00 + 0.025 * i as f64).collect();
    match flows::yield_curves(&cfg, &grid) {
        Ok(rows) => {
            let mut t = Table::new(&["T/Dmin", "baseline", "deterministic", "statistical"]);
            for (k, yb, yd, ys) in rows {
                t.row(&[
                    format!("{k:.3}"),
                    format!("{yb:.4}"),
                    format!("{yd:.4}"),
                    format!("{ys:.4}"),
                ]);
            }
            print!("{}", t.render());
            save(opts, "f3_yield_curves", &t);
        }
        Err(e) => eprintln!("f3: {e} (skipped)"),
    }
}

/// F4 — statistical advantage vs variation magnitude.
fn f4(opts: &Options) {
    println!("\n== F4: extra saving vs sigma(L)/L (c1355) ==");
    let name = if opts.quick { "c499" } else { "c1355" };
    let cfg = FlowConfig {
        mc_samples: 0,
        ..FlowConfig::new(name)
    };
    let sigmas = [0.025, 0.05, 0.075, 0.10];
    match flows::sweep_sigma(&cfg, &sigmas) {
        Ok(points) => {
            let mut t = Table::new(&[
                "sigma_L",
                "det p95 (W)",
                "stat p95 (W)",
                "det yield",
                "stat yield",
                "extra saving",
            ]);
            for p in &points {
                t.row(&[
                    format!("{:.3}", p.x),
                    format!("{:.4e}", p.det_p95),
                    format!("{:.4e}", p.stat_p95),
                    format!("{:.3}", p.det_yield),
                    format!("{:.3}", p.stat_yield),
                    fmt_pct(p.extra_saving),
                ]);
            }
            print!("{}", t.render());
            save(opts, "f4_sigma_sweep", &t);
        }
        Err(e) => eprintln!("f4: {e} (skipped)"),
    }
}

/// F5 — optimizer convergence trace.
fn f5(opts: &Options) {
    println!("\n== F5: statistical-optimizer convergence (c3540) ==");
    let name = if opts.quick { "c880" } else { "c3540" };
    let cfg = FlowConfig {
        mc_samples: 0,
        ..FlowConfig::new(name)
    };
    let setup = match flows::prepare(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("f5: {e} (skipped)");
            return;
        }
    };
    match statleak_opt::statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta) {
        Ok(out) => {
            let mut t = Table::new(&["accepted move", "objective (W)", "yield"]);
            // Subsample long traces to <= 200 rows.
            let trace = &out.report.trace;
            let step = (trace.len() / 200).max(1);
            for p in trace.iter().step_by(step) {
                t.row(&[
                    p.accepted_moves.to_string(),
                    format!("{:.4e}", p.objective),
                    format!("{:.4}", p.timing_yield),
                ]);
            }
            println!(
                "{} accepted moves, objective {} -> {}",
                trace.last().map_or(0, |p| p.accepted_moves),
                fmt_power(out.report.initial_objective),
                fmt_power(out.report.final_objective)
            );
            save(opts, "f5_convergence", &t);
        }
        Err(e) => eprintln!("f5: {e} (skipped)"),
    }
}

/// A1 — modeling ablations.
fn a1(opts: &Options) {
    println!("\n== A1: modeling ablations (c880) ==");
    let cfg = FlowConfig {
        mc_samples: 0,
        ..FlowConfig::new("c880")
    };
    match flows::ablation(&cfg) {
        Ok(rows) => {
            let mut t = Table::new(&["variant", "delay sigma (ps)", "leak p95 (W)", "leak cv"]);
            for r in rows {
                t.row(&[
                    r.variant,
                    format!("{:.2}", r.delay_sigma),
                    format!("{:.4e}", r.leak_p95),
                    format!("{:.3}", r.leak_cv),
                ]);
            }
            print!("{}", t.render());
            save(opts, "a1_ablation", &t);
        }
        Err(e) => eprintln!("a1: {e} (skipped)"),
    }
}

/// A2 — the triple-Vth extension: a third threshold flavor vs the paper's
/// dual-Vth setup, at equal timing yield.
fn a2(opts: &Options) {
    use statleak_opt::{statistical_flow, StatisticalOptimizer};
    use statleak_tech::VthClass;
    println!("\n== A2: dual-Vth vs triple-Vth statistical optimization ==");
    let circuits = if opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1908"]
    };
    let mut t = Table::new(&[
        "circuit",
        "dual p95",
        "triple p95",
        "gain",
        "low/mid/high gates",
    ]);
    for name in circuits {
        let cfg = FlowConfig {
            mc_samples: 0,
            slack_factor: 1.12,
            ..FlowConfig::new(name)
        };
        let setup = match flows::prepare(&cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name}: {e} (skipped)");
                continue;
            }
        };
        let dual = statistical_flow(
            &setup.base,
            &setup.fm,
            &StatisticalOptimizer::new(setup.t_clk).with_yield_target(cfg.eta),
        );
        let triple = statistical_flow(
            &setup.base,
            &setup.fm,
            &StatisticalOptimizer::new(setup.t_clk)
                .with_yield_target(cfg.eta)
                .with_triple_vth(),
        );
        match (dual, triple) {
            (Ok(d), Ok(tr)) => {
                t.row(&[
                    name.to_string(),
                    fmt_power(d.report.final_objective),
                    fmt_power(tr.report.final_objective),
                    fmt_pct(1.0 - tr.report.final_objective / d.report.final_objective),
                    format!(
                        "{}/{}/{}",
                        tr.design.vth_count(VthClass::Low),
                        tr.design.vth_count(VthClass::Mid),
                        tr.design.vth_count(VthClass::High)
                    ),
                ]);
            }
            _ => eprintln!("{name}: flow infeasible (skipped)"),
        }
    }
    print!("{}", t.render());
    save(opts, "a2_triple_vth", &t);
}

/// A3 — post-silicon adaptive body bias on top of the statistically
/// optimized design (extension experiment).
fn a3(opts: &Options) {
    use statleak_mc::{AbbConfig, McConfig, MonteCarlo};
    use statleak_opt::statistical_for_yield;
    use statleak_ssta::Ssta;
    println!("\n== A3: adaptive body bias on the optimized design ==");
    let circuits = if opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1355"]
    };
    let mut t = Table::new(&[
        "circuit",
        "clock (ps)",
        "yield no-ABB",
        "yield ABB",
        "mean leak no-ABB",
        "mean leak ABB",
    ]);
    for name in circuits {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::new(name)
        };
        let setup = match flows::prepare(&cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name}: {e} (skipped)");
                continue;
            }
        };
        let Ok(out) = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta) else {
            eprintln!("{name}: flow infeasible (skipped)");
            continue;
        };
        // Stress the design at a clock tighter than it was built for, so
        // there are slow die for forward bias to rescue.
        let ssta = Ssta::analyze(&out.design, &setup.fm);
        let t_stress = ssta.clock_for_yield(0.85);
        let r = MonteCarlo::new(McConfig {
            samples: mc_samples(opts),
            ..Default::default()
        })
        .run_abb(&out.design, &setup.fm, &AbbConfig::standard(t_stress));
        let vdd = out.design.tech().vdd;
        t.row(&[
            name.to_string(),
            format!("{t_stress:.1}"),
            format!("{:.3}", r.yield_without_abb()),
            format!("{:.3}", r.yield_with_abb()),
            fmt_power(r.leakage_summary_unbiased().mean * vdd),
            fmt_power(r.leakage_summary().mean * vdd),
        ]);
    }
    print!("{}", t.render());
    save(opts, "a3_body_bias", &t);
}

/// T6 — sequential (ISCAS89-class) circuits with placement-driven wire
/// loads: the headline comparison on FF-cut cores (extension experiment).
fn t6(opts: &Options) {
    use statleak_netlist::benchmarks::SEQ_SUITE;
    println!("\n== T6: sequential suite (FF-cut cores, wire loads) ==");
    let names: Vec<&str> = if opts.quick {
        vec!["s27", "s344", "s526"]
    } else {
        SEQ_SUITE.iter().map(|s| s.name).collect()
    };
    let mut t = Table::new(&[
        "circuit",
        "gates",
        "dffs",
        "det p95",
        "stat p95",
        "extra saving",
        "stat yield",
    ]);
    for name in names {
        let spec = SEQ_SUITE.iter().find(|s| s.name == name).expect("known");
        let cfg = FlowConfig {
            mc_samples: 0,
            wire_loads: true,
            ..FlowConfig::new(name)
        };
        match flows::run_comparison(&cfg) {
            Ok(o) => t.row(&[
                name.to_string(),
                spec.gates.to_string(),
                spec.dffs.to_string(),
                fmt_power(o.deterministic.leakage_p95),
                fmt_power(o.statistical.leakage_p95),
                fmt_pct(o.stat_extra_saving),
                format!("{:.3}", o.statistical.timing_yield),
            ]),
            Err(e) => eprintln!("{name}: {e} (skipped)"),
        }
    }
    print!("{}", t.render());
    save(opts, "t6_sequential", &t);
}

/// A4 — correlation-model comparison: grid-Cholesky kernel vs the
/// Agarwal–Blaauw quadtree decomposition (extension experiment). Both are
/// checked against Monte Carlo run through their own factor model.
fn a4(opts: &Options) {
    use statleak_mc::{McConfig, MonteCarlo};
    use statleak_netlist::placement::Placement;
    use statleak_opt::sizing;
    use statleak_ssta::Ssta;
    use statleak_tech::{Design, FactorModel, Technology};
    println!("\n== A4: grid-Cholesky vs quadtree correlation model ==");
    let circuits = if opts.quick {
        vec!["c432", "c880"]
    } else {
        vec!["c432", "c880", "c1355"]
    };
    let mut t = Table::new(&[
        "circuit",
        "model",
        "factors",
        "delay sigma (ps)",
        "MC delay sigma",
        "leak p95 (uW)",
        "MC leak p95",
    ]);
    for name in circuits {
        let cfg = FlowConfig {
            mc_samples: mc_samples(opts),
            ..FlowConfig::new(name)
        };
        let setup = match flows::prepare(&cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{name}: {e} (skipped)");
                continue;
            }
        };
        let placement = Placement::by_level(&setup.circuit);
        let tech = Technology::ptm100();
        let fm_quad =
            FactorModel::build_quadtree(&setup.circuit, &placement, &tech, &cfg.variation, 2);
        let mut design = Design::new(std::sync::Arc::clone(&setup.circuit), tech);
        if sizing::size_for_delay(&mut design, setup.t_clk).is_err() {
            eprintln!("{name}: sizing infeasible (skipped)");
            continue;
        }
        for (label, fm) in [("grid 4x4", &setup.fm), ("quadtree L2", &fm_quad)] {
            let ssta = Ssta::analyze(&design, fm);
            let leak = statleak_leakage::LeakageAnalysis::analyze(&design, fm);
            let mc = MonteCarlo::new(McConfig {
                samples: cfg.mc_samples.max(500),
                ..Default::default()
            })
            .run(&design, fm);
            let vdd = design.tech().vdd;
            t.row(&[
                name.to_string(),
                label.to_string(),
                fm.num_shared().to_string(),
                format!("{:.2}", ssta.circuit_delay().std()),
                format!("{:.2}", mc.delay_summary().std),
                format!("{:.2}", leak.total_power(&design).quantile(0.95) * 1e6),
                format!("{:.2}", mc.leakage_percentile(0.95) * vdd * 1e6),
            ]);
        }
    }
    print!("{}", t.render());
    save(opts, "a4_correlation_models", &t);
}
