//! Load generator for `statleak serve`: batch vs. one-request-per-line.
//!
//! Starts an in-process daemon, warms every op it will request (so the
//! session cache and result memos are hot and the measurement isolates
//! *serving* overhead — dispatch, queueing, protocol encode/decode, and
//! round trips — not flow compute), then drives it to saturation twice
//! with the same concurrent clients:
//!
//! 1. **single**: each client holds one persistent connection and sends
//!    one request line at a time, lock-step (the classic NDJSON client).
//! 2. **batch**: the same clients send the same ops packed into `batch`
//!    requests of [`BATCH_SIZE`] items per line.
//! 3. **access_log**: the single workload again, against a second server
//!    with `--access-log` enabled, to price the audit-log write path
//!    (`overhead_frac` in the output; CI gates it at ≤ 10%).
//!
//! Throughput is requests (resp. items) per second; latency percentiles
//! come from the server's own `serve_queue_wait_ns` / `serve_service_ns`
//! obs histograms. Results land in `BENCH_serve.json` (or the path given
//! as the first CLI argument); the optional second argument scales the
//! per-client request count (default 1500 — CI uses a smaller load):
//!
//! ```text
//! cargo run --release -p statleak-bench --bin serve_perf [out.json] [per_client]
//! ```

use statleak_engine::{Json, ServeConfig, Server};
use statleak_obs as obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// Concurrent client connections in both phases.
const CLIENTS: usize = 8;
/// Items per `batch` request line.
const BATCH_SIZE: usize = 32;
/// Default single-line requests per client in the baseline phase.
const DEFAULT_SINGLE_PER_CLIENT: usize = 1500;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static SHUTDOWN_AUDITED: AtomicBool = AtomicBool::new(false);

/// The op bodies every request cycles through — distinct memo entries,
/// all warmed before measurement.
const ITEM_OPS: [&str; 4] = [
    r#"{"op":"comparison"}"#,
    r#"{"op":"distribution","bins":16}"#,
    r#"{"op":"sweep","axis":"slack_factor","values":[1.2,1.3]}"#,
    r#"{"op":"mc_validation"}"#,
];

/// Shared config suffix: smallest circuit, MC disabled, so a warm
/// request is pure serving overhead.
const CFG: &str = r#""benchmark":"c17","mc_samples":0"#;

fn single_line(i: usize) -> String {
    let body = ITEM_OPS[i % ITEM_OPS.len()];
    // Splice the shared config into the item body's op object.
    let params = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .expect("item op is an object");
    format!("{{\"id\":{i},{params},{CFG}}}")
}

fn batch_line(i: usize) -> String {
    let items: Vec<&str> = (0..BATCH_SIZE)
        .map(|j| ITEM_OPS[(i * BATCH_SIZE + j) % ITEM_OPS.len()])
        .collect();
    format!(
        "{{\"id\":{i},\"op\":\"batch\",{CFG},\"items\":[{}]}}",
        items.join(",")
    )
}

/// One lock-step client: sends each line, reads each response, panics on
/// any protocol or request error (the benchmark must not quietly measure
/// error paths).
fn run_client(addr: SocketAddr, lines: &[String]) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    for line in lines {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        response.clear();
        reader.read_line(&mut response).expect("receive");
        assert!(
            response.contains(r#""ok":true"#),
            "request failed under load: {response}"
        );
    }
}

/// Fans `per_client` lines built by `make_line` over [`CLIENTS`]
/// connections and returns the wall-clock seconds for all to finish.
fn drive(addr: SocketAddr, per_client: usize, make_line: impl Fn(usize) -> String) -> f64 {
    let lines: Vec<Vec<String>> = (0..CLIENTS)
        .map(|c| {
            (0..per_client)
                .map(|i| make_line(c * per_client + i))
                .collect()
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client_lines in &lines {
            scope.spawn(move || run_client(addr, client_lines));
        }
    });
    start.elapsed().as_secs_f64()
}

/// Serializes one histogram from the global registry, ns → µs.
fn histogram_json(name: &str) -> Json {
    let snapshot = obs::Registry::global().snapshot();
    let h = snapshot
        .histograms
        .iter()
        .find(|h| h.name == name)
        .unwrap_or_else(|| panic!("histogram {name} not recorded"));
    Json::obj(vec![
        ("count", Json::Num(h.count as f64)),
        ("p50_us", Json::Num(round2(h.p50 / 1e3))),
        ("p95_us", Json::Num(round2(h.p95 / 1e3))),
        ("p99_us", Json::Num(round2(h.p99 / 1e3))),
        ("mean_us", Json::Num(round2(h.mean / 1e3))),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let single_per_client: usize = std::env::args()
        .nth(2)
        .map(|v| v.parse().expect("per_client must be a number"))
        .unwrap_or(DEFAULT_SINGLE_PER_CLIENT)
        .max(BATCH_SIZE);
    // Same total item count as the baseline, packed into batch lines.
    let batches_per_client = single_per_client / BATCH_SIZE;
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut config = ServeConfig::default();
    config.addr = "127.0.0.1:0".to_string();
    config.queue_depth = 2 * CLIENTS.max(8);
    let server = Server::bind(&config, &SHUTDOWN).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server runs"));

    // Warm every distinct op once: after this, all measured requests are
    // memo hits and the numbers isolate serving overhead.
    eprintln!("warming {} ops on c17 ...", ITEM_OPS.len());
    for i in 0..ITEM_OPS.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{}\n", single_line(i)).as_bytes())
            .expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("receive");
        assert!(
            response.contains(r#""ok":true"#),
            "warmup failed: {response}"
        );
    }

    let single_total = CLIENTS * single_per_client;
    eprintln!("single: {CLIENTS} clients x {single_per_client} one-op lines ...");
    let single_s = drive(addr, single_per_client, single_line);
    let single_rps = single_total as f64 / single_s;
    eprintln!("  {single_total} requests in {single_s:.2} s = {single_rps:.0} req/s");

    let batch_items = CLIENTS * batches_per_client * BATCH_SIZE;
    eprintln!("batch: {CLIENTS} clients x {batches_per_client} lines of {BATCH_SIZE} items ...");
    let batch_s = drive(addr, batches_per_client, batch_line);
    let batch_ips = batch_items as f64 / batch_s;
    let speedup = batch_ips / single_rps;
    eprintln!(
        "  {batch_items} items in {batch_s:.2} s = {batch_ips:.0} items/s ({speedup:.1}x single)"
    );

    // Latency percentiles from the server's own histograms (cumulative
    // over both phases plus warmup).
    let queue_wait = histogram_json("serve_queue_wait_ns");
    let service = histogram_json("serve_service_ns");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).expect("ack");
    let report = server_thread.join().expect("server thread");
    assert_eq!(report.busy_rejected, 0, "benchmark must not shed load");
    assert_eq!(report.request_errors, 0);

    // Phase 3: the identical single workload against a server with the
    // request audit log enabled, pricing the per-request NDJSON write.
    let audit_path =
        std::env::temp_dir().join(format!("statleak-serve-perf-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&audit_path);
    let mut audited_config = ServeConfig::default();
    audited_config.addr = "127.0.0.1:0".to_string();
    audited_config.queue_depth = 2 * CLIENTS.max(8);
    audited_config.access_log = Some(audit_path.to_string_lossy().into_owned());
    let audited = Server::bind(&audited_config, &SHUTDOWN_AUDITED).expect("bind audited");
    let audited_addr = audited.local_addr();
    let audited_thread = std::thread::spawn(move || audited.run().expect("audited server runs"));
    for i in 0..ITEM_OPS.len() {
        let mut stream = TcpStream::connect(audited_addr).expect("connect");
        stream
            .write_all(format!("{}\n", single_line(i)).as_bytes())
            .expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("receive");
        assert!(
            response.contains(r#""ok":true"#),
            "audited warmup failed: {response}"
        );
    }
    eprintln!("access_log: {CLIENTS} clients x {single_per_client} one-op lines, audit log on ...");
    let audited_s = drive(audited_addr, single_per_client, single_line);
    let audited_rps = single_total as f64 / audited_s;
    let overhead_frac = (1.0 - audited_rps / single_rps).max(0.0);
    eprintln!(
        "  {single_total} requests in {audited_s:.2} s = {audited_rps:.0} req/s \
         ({:.1}% overhead vs no log)",
        overhead_frac * 100.0
    );
    let audit_records = std::fs::read_to_string(&audit_path)
        .map(|t| t.lines().count())
        .unwrap_or(0);
    assert!(
        audit_records as u64 >= single_total as u64,
        "every measured request must be audited, got {audit_records}"
    );
    let mut stream = TcpStream::connect(audited_addr).expect("connect");
    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).expect("ack");
    let audited_report = audited_thread.join().expect("audited server thread");
    assert_eq!(audited_report.busy_rejected, 0);
    assert_eq!(audited_report.request_errors, 0);
    let _ = std::fs::remove_file(&audit_path);

    let json = Json::obj(vec![
        (
            "harness",
            Json::str("cargo run --release -p statleak-bench --bin serve_perf"),
        ),
        ("host_cpus", Json::Num(host_cpus as f64)),
        ("clients", Json::Num(CLIENTS as f64)),
        // Mirrors the server's own worker sizing rule (workers = 0).
        ("workers", Json::Num(host_cpus.min(8) as f64)),
        ("batch_size", Json::Num(BATCH_SIZE as f64)),
        (
            "single",
            Json::obj(vec![
                ("requests", Json::Num(single_total as f64)),
                ("elapsed_s", Json::Num(round2(single_s))),
                ("requests_per_s", Json::Num(round2(single_rps))),
            ]),
        ),
        (
            "batch",
            Json::obj(vec![
                ("lines", Json::Num((CLIENTS * batches_per_client) as f64)),
                ("items", Json::Num(batch_items as f64)),
                ("elapsed_s", Json::Num(round2(batch_s))),
                ("items_per_s", Json::Num(round2(batch_ips))),
            ]),
        ),
        ("batch_speedup", Json::Num(round2(speedup))),
        (
            "access_log",
            Json::obj(vec![
                ("requests", Json::Num(single_total as f64)),
                ("elapsed_s", Json::Num(round2(audited_s))),
                ("requests_per_s", Json::Num(round2(audited_rps))),
                ("records", Json::Num(audit_records as f64)),
                // Throughput lost to the audit write path; CI gates ≤ 0.10.
                ("overhead_frac", Json::Num(round4(overhead_frac))),
            ]),
        ),
        ("queue_wait", queue_wait),
        ("service", service),
        (
            "server",
            Json::obj(vec![
                ("served", Json::Num(report.served as f64)),
                ("busy_rejected", Json::Num(report.busy_rejected as f64)),
                (
                    "deadline_expired",
                    Json::Num(report.deadline_expired as f64),
                ),
                ("connections", Json::Num(report.connections as f64)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}
