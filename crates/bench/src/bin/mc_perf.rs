//! `mc_perf` — variance-reduction benchmark for the Monte-Carlo engine.
//!
//! Quantifies, per circuit, how many non-linear full-chip evaluations each
//! estimator needs to pin a far-tail (99.9%) timing yield to a target
//! relative error, and writes `BENCH_mc.json`:
//!
//! * a high-budget importance-sampling reference for the "true" miss
//!   probability;
//! * a plain-MC error-vs-samples curve with Wilson confidence intervals;
//! * an IS error-vs-samples curve with standard errors and ESS;
//! * the required-samples-at-matched-precision comparison, whose ratio is
//!   the headline `nonlinear_eval_ratio` (target: ≥ 100× on c1908/c7552);
//! * Sobol-QMC and control-variate cross-checks at the 95% clock.
//!
//! Usage: `mc_perf [out.json] [circuit ...]` (defaults: `BENCH_mc.json`,
//! `c880 c1908 c7552`).
//!
//! Method note: at a matched 95% CI half-width of `0.1·p`, a counting
//! estimator needs `n = p(1−p)·(1.96/(0.1p))²` samples while a weighted
//! estimator with per-sample variance `σ²_w` needs `σ²_w·(1.96/(0.1p))²`,
//! so the eval ratio reduces to `p(1−p)/σ²_w` — no giant plain-MC run has
//! to actually execute to make the comparison fair.

use statleak_bench::{peak_rss_bytes, standard_setup};
use statleak_mc::{McConfig, MonteCarlo, SamplingScheme};
use statleak_obs as obs;
use statleak_ssta::Ssta;
use std::fmt::Write as _;
use std::time::Instant;

/// The yield target whose tail the benchmark resolves.
const TARGET_YIELD: f64 = 0.999;
/// Samples of the high-budget IS reference run.
const REFERENCE_SAMPLES: usize = 40_000;
/// Relative CI half-width the required-samples comparison is matched at.
const TARGET_REL_ERR: f64 = 0.1;
/// The plain / IS error-vs-samples curve budgets.
const CURVE: [usize; 5] = [500, 1000, 2000, 4000, 8000];

fn config(samples: usize, scheme: &str) -> McConfig {
    McConfig {
        samples,
        ..Default::default()
    }
    .with_scheme(scheme.parse::<SamplingScheme>().expect("valid scheme"))
}

fn main() {
    obs::init_from_env().expect("observability init");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_mc.json".to_string());
    let circuits: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        ["c880", "c1908", "c7552"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };

    let z = statleak_mc::DEFAULT_CI_Z;
    let mut json = String::from("{\n");
    writeln!(json, "  \"target_yield\": {TARGET_YIELD},").unwrap();
    writeln!(json, "  \"target_rel_err\": {TARGET_REL_ERR},").unwrap();
    writeln!(json, "  \"reference_samples\": {REFERENCE_SAMPLES},").unwrap();
    writeln!(json, "  \"circuits\": {{").unwrap();

    for (ci, name) in circuits.iter().enumerate() {
        eprintln!("[mc_perf] {name}: setup");
        let (design, fm) = standard_setup(name);
        let ssta = Ssta::analyze(&design, &fm);
        let t_clk = ssta.clock_for_yield(TARGET_YIELD);
        let expected_miss = 1.0 - TARGET_YIELD;

        // High-budget IS reference: the best estimate of the true miss
        // probability this harness produces.
        let t0 = Instant::now();
        let reference = MonteCarlo::new(config(REFERENCE_SAMPLES, "plain+is"))
            .timing_yield_estimate(&design, &fm, t_clk);
        let reference_s = t0.elapsed().as_secs_f64();
        let p = reference.miss_probability;
        eprintln!(
            "[mc_perf] {name}: reference miss {p:.3e} (analytic {expected_miss:.3e}), \
             se {:.2e}, {reference_s:.1}s",
            reference.std_error
        );

        writeln!(json, "    \"{name}\": {{").unwrap();
        writeln!(json, "      \"t_clk_ps\": {t_clk},").unwrap();
        writeln!(json, "      \"analytic_miss\": {expected_miss},").unwrap();
        writeln!(json, "      \"reference\": {{").unwrap();
        writeln!(json, "        \"miss\": {p},").unwrap();
        writeln!(json, "        \"std_error\": {},", reference.std_error).unwrap();
        writeln!(json, "        \"ess\": {},", reference.ess).unwrap();
        writeln!(
            json,
            "        \"shift_magnitude\": {},",
            reference.shift_magnitude
        )
        .unwrap();
        writeln!(json, "        \"runtime_s\": {reference_s}").unwrap();
        writeln!(json, "      }},").unwrap();

        // Plain-MC curve: counting yield + Wilson CI per budget.
        writeln!(json, "      \"plain_curve\": [").unwrap();
        for (i, &n) in CURVE.iter().enumerate() {
            let t0 = Instant::now();
            let est =
                MonteCarlo::new(config(n, "plain")).timing_yield_estimate(&design, &fm, t_clk);
            let dt = t0.elapsed().as_secs_f64();
            let rel_err = if p > 0.0 {
                (est.miss_probability - p).abs() / p
            } else {
                0.0
            };
            write!(
                json,
                "        {{\"samples\": {n}, \"miss\": {}, \"yield_ci_lo\": {}, \
                 \"yield_ci_hi\": {}, \"rel_err_vs_ref\": {rel_err}, \"runtime_s\": {dt}}}",
                est.miss_probability, est.ci.lo, est.ci.hi
            )
            .unwrap();
            writeln!(json, "{}", if i + 1 < CURVE.len() { "," } else { "" }).unwrap();
        }
        writeln!(json, "      ],").unwrap();

        // IS curve: weighted estimator + normal-theory CI + ESS per budget.
        writeln!(json, "      \"is_curve\": [").unwrap();
        let mut is_var_w = f64::NAN;
        for (i, &n) in CURVE.iter().enumerate() {
            let t0 = Instant::now();
            let est =
                MonteCarlo::new(config(n, "plain+is")).timing_yield_estimate(&design, &fm, t_clk);
            let dt = t0.elapsed().as_secs_f64();
            let rel_err = if p > 0.0 {
                (est.miss_probability - p).abs() / p
            } else {
                0.0
            };
            // Per-sample variance of the weighted tail estimator,
            // recovered from the reported standard error.
            is_var_w = est.std_error * est.std_error * n as f64;
            write!(
                json,
                "        {{\"samples\": {n}, \"miss\": {}, \"std_error\": {}, \
                 \"ess\": {}, \"rel_err_vs_ref\": {rel_err}, \"runtime_s\": {dt}}}",
                est.miss_probability, est.std_error, est.ess
            )
            .unwrap();
            writeln!(json, "{}", if i + 1 < CURVE.len() { "," } else { "" }).unwrap();
        }
        writeln!(json, "      ],").unwrap();

        // Required samples at the matched CI half-width `TARGET_REL_ERR·p`.
        let half_width = TARGET_REL_ERR * p;
        let required_plain = p * (1.0 - p) * (z / half_width) * (z / half_width);
        let required_is = is_var_w * (z / half_width) * (z / half_width);
        let eval_ratio = p * (1.0 - p) / is_var_w;
        eprintln!(
            "[mc_perf] {name}: required plain {required_plain:.0}, IS {required_is:.0} \
             -> ratio {eval_ratio:.0}x"
        );
        writeln!(json, "      \"required_samples_plain\": {required_plain},").unwrap();
        writeln!(json, "      \"required_samples_is\": {required_is},").unwrap();
        writeln!(json, "      \"nonlinear_eval_ratio\": {eval_ratio},").unwrap();

        // Sobol-QMC and control-variate cross-checks at the 95% clock,
        // where a 2000-sample population still resolves the yield.
        let t95 = ssta.clock_for_yield(0.95);
        let plain95 =
            MonteCarlo::new(config(2000, "plain")).timing_yield_estimate(&design, &fm, t95);
        let sobol95 =
            MonteCarlo::new(config(2000, "sobol")).timing_yield_estimate(&design, &fm, t95);
        let cv95 = MonteCarlo::new(config(2000, "plain+cv"));
        let cv_run = cv95.run(&design, &fm);
        let cv_delay = cv_run.delay_mean_cv().expect("cv surrogates recorded");
        let cv_yield = cv95.yield_estimate_from(&cv_run, t95);
        writeln!(json, "      \"qmc\": {{").unwrap();
        writeln!(json, "        \"t_clk_ps\": {t95},").unwrap();
        writeln!(json, "        \"plain_yield\": {},", plain95.yield_value).unwrap();
        writeln!(json, "        \"plain_ci_lo\": {},", plain95.ci.lo).unwrap();
        writeln!(json, "        \"plain_ci_hi\": {},", plain95.ci.hi).unwrap();
        writeln!(json, "        \"sobol_yield\": {}", sobol95.yield_value).unwrap();
        writeln!(json, "      }},").unwrap();
        writeln!(json, "      \"control_variate\": {{").unwrap();
        writeln!(json, "        \"delay_mean_raw\": {},", cv_delay.raw).unwrap();
        writeln!(
            json,
            "        \"delay_mean_adjusted\": {},",
            cv_delay.adjusted
        )
        .unwrap();
        writeln!(
            json,
            "        \"delay_variance_reduction\": {},",
            cv_delay.variance_reduction
        )
        .unwrap();
        writeln!(
            json,
            "        \"yield_adjusted\": {},",
            cv_yield.yield_value
        )
        .unwrap();
        writeln!(json, "        \"yield_std_error\": {}", cv_yield.std_error).unwrap();
        writeln!(json, "      }}").unwrap();
        write!(json, "    }}").unwrap();
        writeln!(json, "{}", if ci + 1 < circuits.len() { "," } else { "" }).unwrap();
    }

    writeln!(json, "  }},").unwrap();
    match peak_rss_bytes() {
        Some(rss) => writeln!(json, "  \"peak_rss_bytes\": {rss}").unwrap(),
        None => writeln!(json, "  \"peak_rss_bytes\": null").unwrap(),
    }
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_mc.json");
    eprintln!("[mc_perf] wrote {out_path}");
    obs::flush();
}
