//! Crash-safe checkpointing for the repro suite.
//!
//! The full reproduction run (`--bin repro`) takes tens of minutes; before
//! this module existed, a crash or `kill -9` at minute 24 restarted the
//! whole suite from zero. The harness now records the outcome of every
//! `(experiment, circuit)` **cell** — the rendered table rows on success,
//! the error class and message on failure — in a manifest directory under
//! `<out>/.checkpoint/<config-hash>/`:
//!
//! * Each cell is one file, written **atomically** (temp file in the same
//!   directory, then `rename`), so a kill mid-write can never corrupt a
//!   completed cell: the manifest only ever contains whole cells.
//! * The manifest directory is keyed by an FNV-1a hash of the run
//!   configuration (format version + `--quick`), so a `--quick` run never
//!   resumes from full-suite cells or vice versa.
//! * Because a cell stores the exact table rows it rendered, a resumed run
//!   assembles **byte-identical CSVs** to an uninterrupted run: cached
//!   cells are spliced verbatim, only unfinished cells recompute.
//! * Loading is tolerant: any unreadable, truncated, or version-mismatched
//!   cell file is treated as absent and recomputed.
//!
//! Cells of an experiment are removed once the experiment completes in a
//! finished run, so checkpoints only persist while a run is interrupted —
//! a fresh invocation after a completed one recomputes from scratch.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version tag written at the top of every cell file. Bump when the
/// encoding changes; old cells then fail to load and recompute.
const FORMAT_HEADER: &str = "statleak-ckpt v1";

/// The recorded outcome of one `(experiment, circuit)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellResult {
    /// The cell computed successfully and produced these table rows.
    Rows(Vec<Vec<String>>),
    /// The cell failed; the suite continued with a structured failure row.
    Failed {
        /// Stable error class (see `FlowError::class`).
        class: String,
        /// Human-readable message.
        message: String,
    },
}

/// A checkpoint manifest bound to one output directory and configuration.
#[derive(Debug)]
pub struct Checkpoint {
    dir: Option<PathBuf>,
}

impl Checkpoint {
    /// Opens (creating if needed) the manifest for `config_key` under
    /// `out_dir/.checkpoint/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(out_dir: &Path, config_key: &str) -> io::Result<Self> {
        let dir = out_dir
            .join(".checkpoint")
            .join(format!("{:016x}", fnv1a64(config_key.as_bytes())));
        fs::create_dir_all(&dir)?;
        Ok(Self { dir: Some(dir) })
    }

    /// A checkpoint that never stores or restores anything.
    pub fn disabled() -> Self {
        Self { dir: None }
    }

    /// Whether this checkpoint persists cells.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The manifest directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn cell_path(&self, experiment: &str, cell: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        Some(dir.join(cell_file_name(experiment, cell)))
    }

    /// Restores a previously stored cell, or `None` if it was never
    /// stored, the manifest is disabled, or the file is unreadable or
    /// corrupt (in which case the caller simply recomputes).
    pub fn load(&self, experiment: &str, cell: &str) -> Option<CellResult> {
        let text = fs::read_to_string(self.cell_path(experiment, cell)?).ok()?;
        decode(&text)
    }

    /// Stores a cell atomically: the encoding is written to a temp file in
    /// the manifest directory and renamed into place, so readers (and
    /// resumed runs after a mid-write kill) only ever see whole cells.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. A disabled checkpoint stores nothing and
    /// returns `Ok`.
    pub fn store(&self, experiment: &str, cell: &str, result: &CellResult) -> io::Result<()> {
        let Some(path) = self.cell_path(experiment, cell) else {
            return Ok(());
        };
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, encode(result))?;
        fs::rename(&tmp, &path)
    }

    /// Removes every stored cell of `experiment` (called once the
    /// experiment has fully completed in a finished run).
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors; missing files are fine.
    pub fn clear_experiment(&self, experiment: &str) -> io::Result<()> {
        let Some(dir) = self.dir.as_ref() else {
            return Ok(());
        };
        let prefix = format!("{}--", sanitize(experiment));
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix))
            {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Removes the whole manifest directory (the `--fresh` flag).
    ///
    /// # Errors
    ///
    /// Propagates removal errors; an absent directory is fine.
    pub fn clear_all(&self) -> io::Result<()> {
        match self.dir.as_ref() {
            Some(dir) if dir.exists() => {
                fs::remove_dir_all(dir).and_then(|()| fs::create_dir_all(dir))
            }
            _ => Ok(()),
        }
    }
}

/// One file per cell: sanitized names plus a short hash of the exact key,
/// so unusual circuit names can never collide after sanitization.
fn cell_file_name(experiment: &str, cell: &str) -> String {
    let key = format!("{experiment}\x1f{cell}");
    format!(
        "{}--{}-{:08x}.cell",
        sanitize(experiment),
        sanitize(cell),
        fnv1a64(key.as_bytes()) as u32
    )
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a cell string so rows join with `\x1f` and lines with `\n`
/// unambiguously.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\x1f' => out.push_str("\\s"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push('\x1f'),
            _ => return None, // corrupt escape: treat the cell as absent
        }
    }
    Some(out)
}

fn encode(result: &CellResult) -> String {
    let mut out = String::new();
    out.push_str(FORMAT_HEADER);
    out.push('\n');
    match result {
        CellResult::Rows(rows) => {
            out.push_str("ok\n");
            for row in rows {
                let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
                out.push_str(&line.join("\x1f"));
                out.push('\n');
            }
        }
        CellResult::Failed { class, message } => {
            out.push_str("err\n");
            out.push_str(&escape(class));
            out.push('\n');
            out.push_str(&escape(message));
            out.push('\n');
        }
    }
    out
}

fn decode(text: &str) -> Option<CellResult> {
    let mut lines = text.lines();
    if lines.next()? != FORMAT_HEADER {
        return None;
    }
    match lines.next()? {
        "ok" => {
            let mut rows = Vec::new();
            for line in lines {
                let row: Option<Vec<String>> = line.split('\x1f').map(unescape).collect();
                rows.push(row?);
            }
            Some(CellResult::Rows(rows))
        }
        "err" => Some(CellResult::Failed {
            class: unescape(lines.next()?)?,
            message: unescape(lines.next()?)?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("statleak_ckpt_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_rows_with_awkward_content() {
        let dir = tmp_dir("rows");
        let ck = Checkpoint::open(&dir, "k").unwrap();
        let rows = CellResult::Rows(vec![
            vec!["c432".into(), "1.2 uW".into()],
            vec![
                "multi\nline, with, commas".into(),
                "back\\slash\x1funit".into(),
            ],
        ]);
        ck.store("t2", "c432", &rows).unwrap();
        assert_eq!(ck.load("t2", "c432"), Some(rows));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trips_failures() {
        let dir = tmp_dir("fail");
        let ck = Checkpoint::open(&dir, "k").unwrap();
        let f = CellResult::Failed {
            class: "infeasible".into(),
            message: "sizing cannot reach 100.00 ps".into(),
        };
        ck.store("t3", "c880", &f).unwrap();
        assert_eq!(ck.load("t3", "c880"), Some(f));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_cells_load_as_none() {
        let dir = tmp_dir("corrupt");
        let ck = Checkpoint::open(&dir, "k").unwrap();
        assert_eq!(ck.load("t2", "c432"), None);
        // A truncated/garbage file must be treated as absent, not a panic.
        let path = ck.dir().unwrap().join(cell_file_name("t2", "c432"));
        fs::write(&path, "statleak-ckpt v1\nok\nbad\\escape\\q").unwrap();
        assert_eq!(ck.load("t2", "c432"), None);
        fs::write(&path, "something else entirely").unwrap();
        assert_eq!(ck.load("t2", "c432"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_config_keys_are_isolated() {
        let dir = tmp_dir("keys");
        let full = Checkpoint::open(&dir, "quick=false").unwrap();
        let quick = Checkpoint::open(&dir, "quick=true").unwrap();
        full.store("t2", "c432", &CellResult::Rows(vec![vec!["full".into()]]))
            .unwrap();
        assert_eq!(quick.load("t2", "c432"), None);
        assert!(full.load("t2", "c432").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_experiment_is_scoped() {
        let dir = tmp_dir("clear");
        let ck = Checkpoint::open(&dir, "k").unwrap();
        let r = CellResult::Rows(vec![vec!["x".into()]]);
        ck.store("t2", "c432", &r).unwrap();
        ck.store("t3", "c432", &r).unwrap();
        ck.clear_experiment("t2").unwrap();
        assert_eq!(ck.load("t2", "c432"), None);
        assert_eq!(ck.load("t3", "c432"), Some(r));
        ck.clear_all().unwrap();
        assert_eq!(ck.load("t3", "c432"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_checkpoint_is_inert() {
        let ck = Checkpoint::disabled();
        assert!(!ck.is_enabled());
        ck.store("t2", "c432", &CellResult::Rows(vec![])).unwrap();
        assert_eq!(ck.load("t2", "c432"), None);
        ck.clear_experiment("t2").unwrap();
        ck.clear_all().unwrap();
    }

    #[test]
    fn store_overwrites_atomically_with_no_stray_temp_files() {
        let dir = tmp_dir("atomic");
        let ck = Checkpoint::open(&dir, "k").unwrap();
        ck.store("t2", "c432", &CellResult::Rows(vec![vec!["v1".into()]]))
            .unwrap();
        ck.store("t2", "c432", &CellResult::Rows(vec![vec!["v2".into()]]))
            .unwrap();
        assert_eq!(
            ck.load("t2", "c432"),
            Some(CellResult::Rows(vec![vec!["v2".into()]]))
        );
        let leftovers: Vec<_> = fs::read_dir(ck.dir().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x != "cell"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
