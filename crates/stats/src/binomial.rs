//! Binomial proportion confidence intervals.
//!
//! Empirical yields are binomial proportions, and the naive Wald interval
//! `p̂ ± z√(p̂(1−p̂)/n)` collapses to zero width at p̂ ∈ {0, 1} — exactly the
//! regime tail-yield estimation lives in. The Wilson score interval inverts
//! the score test instead: it is never degenerate, stays inside `[0, 1]`,
//! and has close-to-nominal coverage even for a handful of trials, which is
//! why every empirical yield in the Monte-Carlo engine reports it.

/// A two-sided confidence interval on a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialInterval {
    /// Lower bound (≥ 0).
    pub lo: f64,
    /// Upper bound (≤ 1).
    pub hi: f64,
}

impl BinomialInterval {
    /// Half the interval width.
    #[inline]
    pub fn half_width(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Whether `p` lies inside the interval (inclusive).
    #[inline]
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// Wilson score interval for `successes` out of `trials` at normal quantile
/// `z` (e.g. `z = 1.96` for 95% confidence).
///
/// Zero trials carry no information: the interval is the whole `[0, 1]`.
///
/// # Panics
///
/// Panics if `successes > trials` or `z` is negative or non-finite.
///
/// ```
/// use statleak_stats::wilson_interval;
/// let ci = wilson_interval(8, 10, 1.96);
/// assert!(ci.lo > 0.44 && ci.lo < 0.50);
/// assert!(ci.hi > 0.94 && ci.hi < 0.97);
/// assert!(ci.contains(0.8));
/// ```
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> BinomialInterval {
    assert!(successes <= trials, "more successes than trials");
    assert!(
        z.is_finite() && z >= 0.0,
        "z must be a non-negative quantile"
    );
    if trials == 0 {
        return BinomialInterval { lo: 0.0, hi: 1.0 };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    BinomialInterval {
        lo: (center - spread).max(0.0),
        hi: (center + spread).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_value() {
        // 8/10 at 95%: Wilson gives ≈ [0.490, 0.943].
        let ci = wilson_interval(8, 10, 1.959_963_985);
        assert!((ci.lo - 0.490).abs() < 5e-3, "lo {}", ci.lo);
        assert!((ci.hi - 0.943).abs() < 5e-3, "hi {}", ci.hi);
    }

    #[test]
    fn never_degenerate_at_the_extremes() {
        let all = wilson_interval(1000, 1000, 1.96);
        assert!(all.hi == 1.0 && all.lo < 1.0 && all.lo > 0.99);
        let none = wilson_interval(0, 1000, 1.96);
        assert!(none.lo == 0.0 && none.hi > 0.0 && none.hi < 0.01);
    }

    #[test]
    fn zero_trials_is_vacuous() {
        assert_eq!(
            wilson_interval(0, 0, 1.96),
            BinomialInterval { lo: 0.0, hi: 1.0 }
        );
    }

    #[test]
    fn width_shrinks_like_inverse_sqrt_n() {
        let w100 = wilson_interval(50, 100, 1.96).half_width();
        let w10000 = wilson_interval(5000, 10_000, 1.96).half_width();
        let ratio = w100 / w10000;
        assert!((ratio - 10.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn zero_z_collapses_to_point_estimate() {
        let ci = wilson_interval(3, 4, 0.0);
        assert!((ci.lo - 0.75).abs() < 1e-12 && (ci.hi - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more successes than trials")]
    fn successes_beyond_trials_rejected() {
        let _ = wilson_interval(5, 4, 1.96);
    }
}
