//! Error function, standard-normal CDF, PDF, and quantile function.
//!
//! `erf`/`erfc` use the rational Chebyshev approximation of W. J. Cody
//! (as popularized in Numerical Recipes' `erfc` with |relative error|
//! below 1.2e-7 everywhere, which is ample for yield computations), and
//! `phi_inv` uses Peter Acklam's rational approximation refined by one
//! Halley step to near machine precision.

/// The standard normal probability density function.
///
/// ```
/// let p = statleak_stats::std_normal_pdf(0.0);
/// assert!((p - 0.3989422804014327).abs() < 1e-12);
/// ```
#[inline]
pub fn std_normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// ```
/// assert!((statleak_stats::erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(statleak_stats::erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit from Numerical Recipes.
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
///
/// ```
/// assert!((statleak_stats::erf(1.0) - 0.8427007929497149).abs() < 1e-6);
/// ```
#[inline]
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// assert!((statleak_stats::phi(0.0) - 0.5).abs() < 1e-7);
/// assert!((statleak_stats::phi(1.6448536269514722) - 0.95).abs() < 1e-6);
/// ```
#[inline]
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Inverse of the standard normal CDF, `Φ⁻¹(p)`.
///
/// Uses Acklam's rational approximation followed by one Halley refinement
/// step, accurate to ~1e-13 over `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// let z = statleak_stats::phi_inv(0.975);
/// assert!((z - 1.959963984540054).abs() < 1e-6);
/// ```
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires p in (0,1), got {p}");
    // Coefficients for Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step for near machine precision.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(0.5) - 0.5204998778130465).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.0) - 0.8413447460685429).abs() < 1e-6);
        assert!((phi(-1.0) - 0.15865525393145707).abs() < 1e-6);
        assert!((phi(3.0) - 0.9986501019683699).abs() < 1e-6);
    }

    #[test]
    fn phi_inv_round_trip() {
        for &p in &[1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.95, 0.999, 1.0 - 1e-6] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-8, "p={p} x={x} phi={}", phi(x));
        }
    }

    #[test]
    fn phi_inv_standard_quantiles() {
        assert!(phi_inv(0.5).abs() < 1e-6);
        assert!((phi_inv(0.95) - 1.6448536269514722).abs() < 1e-6);
        assert!((phi_inv(0.99) - 2.3263478740408408).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "phi_inv requires p in (0,1)")]
    fn phi_inv_rejects_zero() {
        let _ = phi_inv(0.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid over [-8, 8].
        let n = 16_000;
        let h = 16.0 / n as f64;
        let mut s = 0.0;
        for i in 0..=n {
            let x = -8.0 + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            s += w * std_normal_pdf(x);
        }
        assert!((s * h - 1.0).abs() < 1e-9);
    }
}
