//! Bivariate standard-normal CDF.
//!
//! `P(X ≤ x, Y ≤ y)` for jointly standard-normal `X`, `Y` with correlation
//! `rho`, using the Drezner–Wesolowsky Gauss–Legendre scheme (maximum
//! absolute error below ~5e-7 over the full parameter range). This is the
//! kernel of *joint parametric yield*: the probability that a die meets
//! both its timing constraint and its leakage-power budget.

use crate::erf::phi;

/// 10-point Gauss–Legendre abscissae/weights on `[0, 1]` (half of the
/// symmetric 20-point rule).
const GL_X: [f64; 10] = [
    0.076_526_521_133_497_33,
    0.227_785_851_141_645_08,
    0.373_706_088_715_419_56,
    0.510_867_001_950_827_1,
    0.636_053_680_726_515_1,
    0.746_331_906_460_150_8,
    0.839_116_971_822_218_8,
    0.912_234_428_251_326,
    0.963_971_927_277_913_8,
    0.993_128_599_185_094_9,
];
const GL_W: [f64; 10] = [
    0.152_753_387_130_725_85,
    0.149_172_986_472_603_75,
    0.142_096_109_318_382_05,
    0.131_688_638_449_176_63,
    0.118_194_531_961_518_42,
    0.101_930_119_817_240_44,
    0.083_276_741_576_704_75,
    0.062_672_048_334_109_06,
    0.040_601_429_800_386_94,
    0.017_614_007_139_152_118,
];

/// Bivariate standard-normal CDF `P(X ≤ x, Y ≤ y)` with correlation `rho`.
///
/// Integrates `∂Φ₂/∂ρ = φ₂(x, y; r)` over `r ∈ [0, rho]` by Gauss–Legendre
/// quadrature, starting from the independent case `Φ(x)·Φ(y)`.
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]` or the inputs are NaN.
///
/// ```
/// use statleak_stats::bivariate_normal_cdf;
/// // Independence factorizes.
/// let p = bivariate_normal_cdf(0.5, -0.3, 0.0);
/// let q = statleak_stats::phi(0.5) * statleak_stats::phi(-0.3);
/// assert!((p - q).abs() < 1e-9);
/// ```
pub fn bivariate_normal_cdf(x: f64, y: f64, rho: f64) -> f64 {
    assert!(!x.is_nan() && !y.is_nan(), "inputs must not be NaN");
    assert!(
        (-1.0..=1.0).contains(&rho),
        "rho must be in [-1,1], got {rho}"
    );

    // Perfect-correlation limits are exact.
    if rho >= 1.0 - 1e-15 {
        return phi(x.min(y));
    }
    if rho <= -1.0 + 1e-15 {
        return (phi(x) + phi(y) - 1.0).max(0.0);
    }
    // Φ₂(x,y;ρ) = Φ(x)Φ(y) + ∫₀^ρ φ₂(x,y;r) dr, with
    // φ₂(x,y;r) = exp(−(x²−2rxy+y²)/(2(1−r²))) / (2π√(1−r²)).
    let base = phi(x) * phi(y);
    let mut integral = 0.0;
    for k in 0..GL_X.len() {
        for &sign in &[-1.0, 1.0] {
            // Map the symmetric 20-point rule on [0, rho].
            let r = 0.5 * rho * (1.0 + sign * GL_X[k]);
            let omr2 = 1.0 - r * r;
            let dens = (-(x * x - 2.0 * r * x * y + y * y) / (2.0 * omr2)).exp()
                / (2.0 * std::f64::consts::PI * omr2.sqrt());
            integral += 0.5 * rho.abs() * GL_W[k] * dens * rho.signum();
        }
    }
    (base + integral).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independence_factorizes() {
        for &(x, y) in &[(0.0, 0.0), (1.0, -1.0), (2.5, 0.3), (-2.0, -2.0)] {
            let p = bivariate_normal_cdf(x, y, 0.0);
            assert!((p - phi(x) * phi(y)).abs() < 1e-9, "x={x} y={y}");
        }
    }

    #[test]
    fn origin_known_values() {
        // Φ₂(0,0;ρ) = 1/4 + asin(ρ)/(2π).
        for &rho in &[-0.9f64, -0.5, 0.0, 0.3, 0.7, 0.95] {
            let expect = 0.25 + rho.asin() / (2.0 * std::f64::consts::PI);
            let got = bivariate_normal_cdf(0.0, 0.0, rho);
            assert!((got - expect).abs() < 1e-6, "rho={rho}: {got} vs {expect}");
        }
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = bivariate_normal_cdf(0.7, -0.2, 0.5);
        let b = bivariate_normal_cdf(-0.2, 0.7, 0.5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn perfect_correlation_limits() {
        assert!((bivariate_normal_cdf(0.5, 1.5, 1.0) - phi(0.5)).abs() < 1e-12);
        let p = bivariate_normal_cdf(0.5, 0.5, -1.0);
        assert!((p - (2.0 * phi(0.5) - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_arguments_and_rho() {
        assert!(bivariate_normal_cdf(1.0, 1.0, 0.3) > bivariate_normal_cdf(0.5, 1.0, 0.3));
        assert!(bivariate_normal_cdf(1.0, 1.0, 0.3) > bivariate_normal_cdf(1.0, 0.5, 0.3));
        // For positive thresholds, higher rho raises joint probability.
        assert!(bivariate_normal_cdf(1.0, 1.0, 0.8) > bivariate_normal_cdf(1.0, 1.0, 0.2));
    }

    #[test]
    fn marginal_limit() {
        // y → ∞ reduces to the marginal.
        let p = bivariate_normal_cdf(0.8, 8.0, 0.6);
        assert!((p - phi(0.8)).abs() < 1e-7);
    }

    #[test]
    fn against_monte_carlo() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let (x, y, rho) = (0.6, -0.4, -0.55);
        let n = 400_000;
        let mut hits = 0usize;
        for _ in 0..n {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let z1 = r * (2.0 * std::f64::consts::PI * u2).cos();
            let z2 = r * (2.0 * std::f64::consts::PI * u2).sin();
            let w = rho * z1 + (1.0f64 - rho * rho).sqrt() * z2;
            if z1 <= x && w <= y {
                hits += 1;
            }
        }
        let mc = hits as f64 / n as f64;
        let an = bivariate_normal_cdf(x, y, rho);
        assert!((an - mc).abs() < 0.003, "{an} vs MC {mc}");
    }

    #[test]
    #[should_panic(expected = "rho must be in [-1,1]")]
    fn rejects_bad_rho() {
        let _ = bivariate_normal_cdf(0.0, 0.0, 1.5);
    }
}
