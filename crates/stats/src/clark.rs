//! Clark's approximation for the maximum of correlated Gaussians.
//!
//! C. E. Clark, "The greatest of a finite set of random variables,"
//! Operations Research 9(2), 1961. This is the statistical-max kernel used
//! by block-based SSTA: given two jointly Gaussian arrival times it returns
//! the first two moments of their maximum plus the *tightness probability*
//! `P(A ≥ B)` used to blend sensitivity coefficients.

use crate::erf::{phi, std_normal_pdf};

/// Moments of `max(A, B)` for jointly Gaussian `A`, `B`, plus the tightness
/// probability of the first argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClarkMoments {
    /// `E[max(A, B)]`.
    pub mean: f64,
    /// `Var[max(A, B)]` (clamped at zero against round-off).
    pub variance: f64,
    /// Tightness probability `P(A ≥ B)` — the weight given to `A`'s
    /// sensitivities when re-canonicalizing the max.
    pub tightness: f64,
}

/// Clark's two-moment approximation of `max(A, B)` where
/// `A ~ N(mean_a, var_a)`, `B ~ N(mean_b, var_b)` and `Cov(A,B) = cov`.
///
/// Handles the degenerate case where the two inputs are (numerically)
/// perfectly correlated with equal variance, in which case the max is just
/// the one with the larger mean.
///
/// ```
/// use statleak_stats::clark_max;
/// // Independent standard normals: E[max] = 1/sqrt(pi).
/// let m = clark_max(0.0, 1.0, 0.0, 1.0, 0.0);
/// assert!((m.mean - 0.5641895835477563).abs() < 1e-9);
/// assert!((m.tightness - 0.5).abs() < 1e-7);
/// ```
pub fn clark_max(mean_a: f64, var_a: f64, mean_b: f64, var_b: f64, cov: f64) -> ClarkMoments {
    debug_assert!(var_a >= 0.0 && var_b >= 0.0, "variances must be >= 0");
    // Variance of A - B.
    let theta2 = (var_a + var_b - 2.0 * cov).max(0.0);
    let theta = theta2.sqrt();
    if theta < 1e-15 {
        // A and B differ by (at most) a constant: max is the larger one.
        return if mean_a >= mean_b {
            ClarkMoments {
                mean: mean_a,
                variance: var_a,
                tightness: 1.0,
            }
        } else {
            ClarkMoments {
                mean: mean_b,
                variance: var_b,
                tightness: 0.0,
            }
        };
    }
    let alpha = (mean_a - mean_b) / theta;
    let t = phi(alpha); // P(A >= B)
    let pdf = std_normal_pdf(alpha);
    let mean = mean_a * t + mean_b * (1.0 - t) + theta * pdf;
    let second_moment = (var_a + mean_a * mean_a) * t
        + (var_b + mean_b * mean_b) * (1.0 - t)
        + (mean_a + mean_b) * theta * pdf;
    let variance = (second_moment - mean * mean).max(0.0);
    ClarkMoments {
        mean,
        variance,
        tightness: t,
    }
}

/// Iterated Clark max over a slice of `(mean, variance)` pairs assumed
/// mutually independent. Returns the approximated `(mean, variance)` of the
/// overall maximum.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn clark_max_many(items: &[(f64, f64)]) -> (f64, f64) {
    assert!(
        !items.is_empty(),
        "clark_max_many requires at least one item"
    );
    let (mut m, mut v) = items[0];
    for &(mi, vi) in &items[1..] {
        let r = clark_max(m, v, mi, vi, 0.0);
        m = r.mean;
        v = r.variance;
    }
    (m, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_input_wins() {
        // A is far above B: max ≈ A.
        let r = clark_max(100.0, 1.0, 0.0, 1.0, 0.0);
        assert!((r.mean - 100.0).abs() < 1e-9);
        assert!((r.variance - 1.0).abs() < 1e-6);
        assert!((r.tightness - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_inputs_half_tightness() {
        let r = clark_max(5.0, 2.0, 5.0, 2.0, 0.0);
        assert!((r.tightness - 0.5).abs() < 1e-7);
        assert!(r.mean > 5.0); // max of two equals exceeds either mean
    }

    #[test]
    fn perfectly_correlated_equal_variance() {
        let r = clark_max(3.0, 4.0, 1.0, 4.0, 4.0);
        assert_eq!(r.mean, 3.0);
        assert_eq!(r.variance, 4.0);
        assert_eq!(r.tightness, 1.0);
    }

    #[test]
    fn max_mean_at_least_either_mean() {
        for &(ma, mb, cov) in &[(0.0, 0.0, 0.0), (1.0, -1.0, 0.5), (-2.0, 3.0, -0.3)] {
            let r = clark_max(ma, 1.0, mb, 1.0, cov);
            assert!(r.mean >= ma.max(mb) - 1e-12);
        }
    }

    #[test]
    fn against_monte_carlo_independent() {
        // MC check of mean/variance of max of two independent Gaussians.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let (ma, sa, mb, sb) = (1.0, 2.0, 2.0, 0.5);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            // Box-Muller
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let z1 = r * (2.0 * std::f64::consts::PI * u2).cos();
            let z2 = r * (2.0 * std::f64::consts::PI * u2).sin();
            let x = (ma + sa * z1).max(mb + sb * z2);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let r = clark_max(ma, sa * sa, mb, sb * sb, 0.0);
        assert!((r.mean - mean).abs() < 0.02, "mean {} vs {}", r.mean, mean);
        assert!(
            (r.variance - var).abs() < 0.05,
            "var {} vs {}",
            r.variance,
            var
        );
    }

    #[test]
    fn many_reduces_like_pairwise() {
        let items = [(0.0, 1.0), (0.5, 1.0), (1.0, 1.0)];
        let (m, v) = clark_max_many(&items);
        assert!(m > 1.0);
        assert!(v > 0.0 && v < 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn many_rejects_empty() {
        let _ = clark_max_many(&[]);
    }
}
