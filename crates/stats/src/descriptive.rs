//! Descriptive statistics and histograms for Monte-Carlo output.

/// Summary statistics of a sample: mean, standard deviation, extrema, and
/// interpolated percentiles.
///
/// ```
/// use statleak_stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population convention, `1/n`).
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            count: samples.len(),
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median: percentile_of_sorted(&sorted, 0.50),
            p95: percentile_of_sorted(&sorted, 0.95),
            p99: percentile_of_sorted(&sorted, 0.99),
        }
    }

    /// Interpolated percentile at probability `p ∈ [0, 1]` (re-sorts a copy
    /// of the data; prefer [`percentile_of_sorted`] for repeated queries).
    pub fn percentile(samples: &[f64], p: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        percentile_of_sorted(&sorted, p)
    }
}

/// Linear-interpolated percentile of an already **sorted** sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-bin histogram over `[lo, hi)` with outliers counted in the edge
/// bins, used to render Monte-Carlo leakage/delay distributions.
///
/// Non-finite observations (NaN, ±∞) are never binned — `NaN as usize`
/// would land in bin 0 and silently distort the distribution — they are
/// skipped and counted in [`Histogram::dropped`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    dropped: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            dropped: 0,
        }
    }

    /// Builds a histogram spanning the finite sample range. Non-finite
    /// samples do not contribute to the range and are counted as dropped.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "empty sample");
        let finite = samples.iter().copied().filter(|x| x.is_finite());
        let lo = finite.clone().fold(f64::INFINITY, f64::min);
        let hi = finite.fold(f64::NEG_INFINITY, f64::max);
        // All-non-finite input: an arbitrary unit range; every sample is
        // dropped by `add` below.
        let (lo, hi) = if lo.is_finite() && hi.is_finite() {
            (lo, hi)
        } else {
            (0.0, 1.0)
        };
        // Guard the degenerate all-equal case: give the single value a
        // range wide enough to survive floating-point addition at `lo`.
        let span = (hi - lo).max(lo.abs() * 1e-9).max(1e-12);
        let mut h = Self::new(lo, lo + span * 1.000_001, bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Adds one observation; finite values outside `[lo, hi)` clamp to
    /// edge bins, non-finite values (NaN, ±∞) are skipped and counted in
    /// [`Histogram::dropped`].
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.dropped += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64)
            .floor()
            .clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of binned observations (excludes dropped ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of non-finite observations skipped by [`Histogram::add`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized density of bin `i` (so the histogram integrates to 1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn density(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        if self.total == 0 {
            return 0.0;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / (self.total as f64 * w)
    }

    /// Renders an ASCII bar chart, one bin per line, for quick inspection.
    /// A trailing line reports dropped (non-finite) observations, if any.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("{:>12.4e} | {bar} {c}\n", self.bin_center(i)));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "  ({} non-finite sample(s) dropped)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((percentile_of_sorted(&sorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&sorted, 1.0) - 5.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&sorted, 0.5) - 3.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&sorted, 0.625) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile_of_sorted(&[42.0], 0.73), 42.0);
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert_eq!(h.total(), 100);
        for i in 0..10 {
            assert_eq!(h.counts()[i], 10, "bin {i}");
            assert!((h.density(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn histogram_from_samples_spans_range() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0], 3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let h = Histogram::from_samples(&[0.0, 0.5, 1.0], 5);
        assert_eq!(h.to_ascii(20).lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        let _ = percentile_of_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn percentile_rejects_p_above_one() {
        let _ = percentile_of_sorted(&[1.0, 2.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn percentile_rejects_negative_p() {
        let _ = percentile_of_sorted(&[1.0, 2.0], -0.1);
    }

    #[test]
    fn histogram_drops_nan_instead_of_bin_zero() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(f64::NAN);
        h.add(5.0);
        assert_eq!(h.counts()[0], 0, "NaN must not land in bin 0");
        assert_eq!(h.total(), 1);
        assert_eq!(h.dropped(), 1);
        // Density still normalizes over the binned observations only.
        assert!((h.density(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_drops_infinities() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(f64::INFINITY);
        h.add(f64::NEG_INFINITY);
        assert_eq!(h.total(), 0);
        assert_eq!(h.dropped(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn histogram_from_samples_ignores_nan_for_range() {
        let h = Histogram::from_samples(&[1.0, f64::NAN, 3.0], 2);
        assert_eq!(h.total(), 2);
        assert_eq!(h.dropped(), 1);
        // Range spans the finite values only.
        assert!(h.bin_center(0) > 1.0 && h.bin_center(1) < 3.1);
    }

    #[test]
    fn histogram_from_all_nan_samples_drops_everything() {
        let h = Histogram::from_samples(&[f64::NAN, f64::NAN], 3);
        assert_eq!(h.total(), 0);
        assert_eq!(h.dropped(), 2);
        for i in 0..3 {
            assert_eq!(h.density(i), 0.0);
        }
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::from_samples(&[7.5], 4);
        assert_eq!(h.total(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn ascii_reports_dropped() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.5);
        h.add(f64::NAN);
        assert!(h.to_ascii(10).contains("1 non-finite"));
    }
}
