//! Lognormal distribution — the natural law of sub-threshold leakage.
//!
//! If `ln X ~ N(mu, sigma²)` then `X` is lognormal. Because sub-threshold
//! leakage depends exponentially on threshold voltage, and threshold voltage
//! is (to first order) Gaussian in the process parameters, every gate's
//! leakage current is lognormal and the full-chip leakage is a sum of
//! correlated lognormals.

use crate::erf::{phi, phi_inv};
use crate::normal::Normal;

/// A lognormal distribution parameterized by the mean `mu` and standard
/// deviation `sigma` of the underlying Gaussian `ln X`.
///
/// ```
/// use statleak_stats::LogNormal;
/// let x = LogNormal::new(0.0, 1.0);
/// assert!((x.median() - 1.0).abs() < 1e-12);
/// assert!((x.mean() - (0.5f64).exp()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the ln-space moments.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite, got {mu}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative, got {sigma}"
        );
        Self { mu, sigma }
    }

    /// Builds the lognormal whose *linear-space* mean and variance match the
    /// given moments (Fenton–Wilkinson moment matching).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive or `variance` is negative.
    pub fn from_moments(mean: f64, variance: f64) -> Self {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        assert!(variance >= 0.0, "variance must be non-negative");
        let ratio = 1.0 + variance / (mean * mean);
        let sigma2 = ratio.ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// The ln-space mean `mu`.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The ln-space standard deviation `sigma`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Linear-space mean `E[X] = exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Linear-space variance `(exp(sigma²) − 1)·exp(2mu + sigma²)`.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Linear-space standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Cumulative distribution function `P(X ≤ x)`; zero for `x ≤ 0`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.sigma == 0.0 {
            return if x >= self.median() { 1.0 } else { 0.0 };
        }
        phi((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// The 95th percentile — the paper's leakage objective — is
    /// `quantile(0.95)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * phi_inv(p)).exp()
    }

    /// The underlying Gaussian of `ln X`.
    pub fn ln_normal(&self) -> Normal {
        Normal::new(self.mu, self.sigma)
    }

    /// Multiplies the random variable by a positive constant `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn scale(&self, k: f64) -> LogNormal {
        assert!(k > 0.0, "scale factor must be positive, got {k}");
        LogNormal::new(self.mu + k.ln(), self.sigma)
    }
}

impl std::fmt::Display for LogNormal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogN(mu={:.6}, sigma={:.6})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_round_trip() {
        let x = LogNormal::new(1.3, 0.7);
        let y = LogNormal::from_moments(x.mean(), x.variance());
        assert!((x.mu() - y.mu()).abs() < 1e-10);
        assert!((x.sigma() - y.sigma()).abs() < 1e-10);
    }

    #[test]
    fn cdf_median_is_half() {
        let x = LogNormal::new(-2.0, 0.9);
        assert!((x.cdf(x.median()) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn quantile_cdf_inverse() {
        let x = LogNormal::new(0.4, 1.1);
        for &p in &[0.05, 0.5, 0.95, 0.99] {
            assert!((x.cdf(x.quantile(p)) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn tail_is_heavy() {
        // 95th percentile well above mean for large sigma.
        let x = LogNormal::new(0.0, 1.5);
        assert!(x.quantile(0.95) > x.mean());
    }

    #[test]
    fn cdf_zero_below_support() {
        let x = LogNormal::new(0.0, 1.0);
        assert_eq!(x.cdf(0.0), 0.0);
        assert_eq!(x.cdf(-3.0), 0.0);
    }

    #[test]
    fn scale_shifts_mu() {
        let x = LogNormal::new(0.0, 0.5);
        let y = x.scale(10.0);
        assert!((y.mean() - 10.0 * x.mean()).abs() < 1e-9);
        assert!((y.sigma() - x.sigma()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lognormal mean must be positive")]
    fn from_moments_rejects_nonpositive_mean() {
        let _ = LogNormal::from_moments(0.0, 1.0);
    }
}
