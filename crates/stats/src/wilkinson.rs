//! Fenton–Wilkinson moment matching for sums of correlated lognormals.
//!
//! The chip-level leakage current is `I_total = Σ_i I_i` where every `I_i`
//! is lognormal, `ln I_i = mu_i + g_i`, and the Gaussian exponents `g_i`
//! are correlated through shared process-variation factors. Wilkinson's
//! method computes the exact first two moments of the sum (which *are*
//! available in closed form) and matches a single lognormal to them. It is
//! the standard approach in statistical leakage analysis and is accurate in
//! the body and the moderate upper tail of the distribution, which is what
//! the 95th/99th-percentile objectives need.

use crate::lognormal::LogNormal;

/// One lognormal term of a correlated sum: `X_i = exp(mu + Σ_k a_k Z_k + b·R_i)`
/// where `Z_k` are shared independent standard-normal factors and `R_i` is a
/// term-local independent standard normal.
#[derive(Debug, Clone, PartialEq)]
pub struct LognormalTerm {
    /// ln-space mean.
    pub mu: f64,
    /// Sensitivities to the shared factors (all terms must use the same
    /// factor ordering; missing trailing factors are treated as zero).
    pub factor_coeffs: Vec<f64>,
    /// Coefficient of the term-local independent factor.
    pub local_coeff: f64,
}

impl LognormalTerm {
    /// Total ln-space variance of this term.
    pub fn ln_variance(&self) -> f64 {
        self.factor_coeffs.iter().map(|a| a * a).sum::<f64>() + self.local_coeff * self.local_coeff
    }

    /// ln-space covariance with another term (only shared factors
    /// contribute; local terms are independent across terms).
    pub fn ln_covariance(&self, other: &LognormalTerm) -> f64 {
        self.factor_coeffs
            .iter()
            .zip(&other.factor_coeffs)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Linear-space mean of this term.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.ln_variance()).exp()
    }

    /// This term as a standalone [`LogNormal`].
    pub fn to_lognormal(&self) -> LogNormal {
        LogNormal::new(self.mu, self.ln_variance().sqrt())
    }
}

/// Sums correlated lognormal terms by Wilkinson (two-moment) matching.
///
/// The exact mean is `Σ exp(mu_i + v_i/2)` and the exact second moment uses
/// `E[X_i X_j] = exp(mu_i + mu_j + (v_i + v_j + 2 c_ij)/2)`; the result is
/// the lognormal with those two moments. Runs in `O(n²)` over the terms
/// (with `n` capped by the caller — leakage analysis aggregates per grid
/// region first so `n` is the region count, not the gate count).
///
/// # Panics
///
/// Panics if `terms` is empty.
///
/// ```
/// use statleak_stats::{wilkinson_sum, LognormalTerm};
/// let t = LognormalTerm { mu: 0.0, factor_coeffs: vec![0.3], local_coeff: 0.4 };
/// let sum = wilkinson_sum(std::slice::from_ref(&t));
/// // Sum of one term is that term.
/// assert!((sum.mean() - t.mean()).abs() < 1e-12);
/// ```
pub fn wilkinson_sum(terms: &[LognormalTerm]) -> LogNormal {
    assert!(
        !terms.is_empty(),
        "wilkinson_sum requires at least one term"
    );
    let means: Vec<f64> = terms.iter().map(LognormalTerm::mean).collect();
    let total_mean: f64 = means.iter().sum();

    // E[(ΣX)²] = Σ_ij E[X_i X_j]; E[X_i X_j] = m_i m_j exp(c_ij).
    let mut second = 0.0;
    for (i, ti) in terms.iter().enumerate() {
        // Diagonal: c_ii = v_i (including the local part).
        second += means[i] * means[i] * ti.ln_variance().exp();
        for (j, tj) in terms.iter().enumerate().skip(i + 1) {
            let cij = ti.ln_covariance(tj);
            second += 2.0 * means[i] * means[j] * cij.exp();
        }
    }
    let variance = (second - total_mean * total_mean).max(0.0);
    LogNormal::from_moments(total_mean, variance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn term(mu: f64, shared: &[f64], local: f64) -> LognormalTerm {
        LognormalTerm {
            mu,
            factor_coeffs: shared.to_vec(),
            local_coeff: local,
        }
    }

    #[test]
    fn independent_sum_moments_exact() {
        // Two independent lognormals: Wilkinson matches exact mean/variance.
        let a = term(0.0, &[], 0.5);
        let b = term(0.3, &[], 0.4);
        let s = wilkinson_sum(&[a.clone(), b.clone()]);
        let exact_mean = a.to_lognormal().mean() + b.to_lognormal().mean();
        let exact_var = a.to_lognormal().variance() + b.to_lognormal().variance();
        assert!((s.mean() - exact_mean).abs() < 1e-10);
        assert!((s.variance() - exact_var).abs() < 1e-9);
    }

    #[test]
    fn correlated_sum_has_larger_variance() {
        let shared = [0.5];
        let a = term(0.0, &shared, 0.0);
        let b = term(0.0, &shared, 0.0);
        let corr = wilkinson_sum(&[a, b]);
        let ai = term(0.0, &[], 0.5);
        let bi = term(0.0, &[], 0.5);
        let indep = wilkinson_sum(&[ai, bi]);
        assert!((corr.mean() - indep.mean()).abs() < 1e-10);
        assert!(corr.variance() > indep.variance());
    }

    #[test]
    fn perfectly_correlated_pair_is_scaled_single() {
        // X + X = 2X exactly, and Wilkinson is exact for that case.
        let a = term(0.2, &[0.6], 0.0);
        let s = wilkinson_sum(&[a.clone(), a.clone()]);
        let expect = a.to_lognormal().scale(2.0);
        assert!((s.mean() - expect.mean()).abs() < 1e-9);
        assert!((s.variance() - expect.variance()).abs() < 1e-8);
    }

    #[test]
    fn against_monte_carlo() {
        // 3 terms sharing 2 factors; compare mean/std and 95th percentile.
        let terms = vec![
            term(0.0, &[0.3, 0.1], 0.2),
            term(-0.5, &[0.2, 0.25], 0.15),
            term(0.4, &[0.1, 0.1], 0.3),
        ];
        let analytic = wilkinson_sum(&terms);

        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let mut z = [0.0f64; 2];
            for zi in &mut z {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                *zi = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
            let mut total = 0.0;
            for t in &terms {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let g: f64 = t.factor_coeffs.iter().zip(&z).map(|(a, zz)| a * zz).sum();
                total += (t.mu + g + t.local_coeff * r).exp();
            }
            samples.push(total);
        }
        samples.sort_by(f64::total_cmp);
        let mc_mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let mc_p95 = samples[(0.95 * n as f64) as usize];

        assert!(
            (analytic.mean() - mc_mean).abs() / mc_mean < 0.01,
            "mean {} vs {}",
            analytic.mean(),
            mc_mean
        );
        assert!(
            (analytic.quantile(0.95) - mc_p95).abs() / mc_p95 < 0.03,
            "p95 {} vs {}",
            analytic.quantile(0.95),
            mc_p95
        );
    }

    #[test]
    fn mismatched_factor_lengths_treated_as_zero() {
        let a = term(0.0, &[0.5, 0.2], 0.0);
        let b = term(0.0, &[0.5], 0.0);
        // Covariance only over the shared prefix.
        assert!((a.ln_covariance(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_sum_rejected() {
        let _ = wilkinson_sum(&[]);
    }
}
