//! Minimal dense linear algebra: a small symmetric-matrix type and a
//! Cholesky factorization, used to turn spatial correlation matrices into
//! independent Gaussian factors shared by SSTA, leakage analysis, and the
//! Monte-Carlo sampler.

/// A dense, row-major `n × n` matrix of `f64`.
///
/// ```
/// use statleak_stats::Matrix;
/// let mut m = Matrix::identity(3);
/// m[(0, 1)] = 0.5;
/// assert_eq!(m[(0, 1)], 0.5);
/// assert_eq!(m[(2, 2)], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * n,
            "expected {} entries, got {}",
            n * n,
            data.len()
        );
        Self { n, data }
    }

    /// Side length of the matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.n,
            "row {i} out of bounds for {}x{} matrix",
            self.n,
            self.n
        );
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Computes `self · selfᵀ`, useful to verify a Cholesky factor.
    pub fn mul_transpose(&self) -> Matrix {
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self[(i, k)] * self[(j, k)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// Maximum absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Error returned by [`cholesky`] when the input is not positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CholeskyError {
    /// The pivot index at which the factorization failed.
    pub pivot: usize,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (failed at pivot {})",
            self.pivot
        )
    }
}

impl std::error::Error for CholeskyError {}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, returning the lower-triangular factor `L`.
///
/// A tiny negative pivot (≥ −1e-10 relative) is clamped to zero to tolerate
/// round-off in nearly singular correlation matrices.
///
/// # Errors
///
/// Returns [`CholeskyError`] if a pivot is significantly negative, i.e. the
/// matrix is not positive semi-definite.
///
/// ```
/// use statleak_stats::{cholesky, Matrix};
/// let a = Matrix::from_rows(2, vec![4.0, 2.0, 2.0, 3.0]);
/// let l = cholesky(&a)?;
/// assert!(l.mul_transpose().max_abs_diff(&a) < 1e-12);
/// # Ok::<(), statleak_stats::CholeskyError>(())
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    let n = a.n();
    let mut l = Matrix::zeros(n);
    let scale = (0..n).map(|i| a[(i, i)].abs()).fold(1.0, f64::max);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d < -1e-10 * scale {
            return Err(CholeskyError { pivot: j });
        }
        let d = d.max(0.0).sqrt();
        l[(j, j)] = d;
        for i in (j + 1)..n {
            if d == 0.0 {
                l[(i, j)] = 0.0;
                continue;
            }
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / d;
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]);
        let l = cholesky(&a).expect("positive definite");
        assert!(l.mul_transpose().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn cholesky_of_identity_is_identity() {
        let a = Matrix::identity(5);
        let l = cholesky(&a).unwrap();
        assert!(l.max_abs_diff(&Matrix::identity(5)) < 1e-15);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn cholesky_tolerates_semidefinite() {
        // Rank-1 matrix: perfectly correlated pair.
        let a = Matrix::from_rows(2, vec![1.0, 1.0, 1.0, 1.0]);
        let l = cholesky(&a).expect("PSD should be tolerated");
        assert!(l.mul_transpose().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]);
        let y = a.mul_vec(&[5.0, 6.0]);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn error_displays_pivot() {
        let e = CholeskyError { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }
}
