//! Gaussian (normal) distribution with the operations SSTA needs.

use crate::erf::{phi, phi_inv, std_normal_pdf};

/// A univariate Gaussian distribution `N(mean, std²)`.
///
/// Used throughout the workspace to describe first-order (canonical) timing
/// quantities after the factor structure has been collapsed.
///
/// ```
/// use statleak_stats::Normal;
/// let d = Normal::new(10.0, 2.0);
/// assert!((d.cdf(10.0) - 0.5).abs() < 1e-7);
/// assert!((d.quantile(0.5) - 10.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a Gaussian with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite, or `mean` is not finite.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite, got {mean}");
        assert!(
            std.is_finite() && std >= 0.0,
            "std must be finite and non-negative, got {std}"
        );
        Self { mean, std }
    }

    /// The mean of the distribution.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    #[inline]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// The variance of the distribution.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.std * self.std
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    ///
    /// A degenerate (zero-variance) Gaussian yields a step function.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            if x >= self.mean {
                1.0
            } else {
                0.0
            }
        } else {
            phi((x - self.mean) / self.std)
        }
    }

    /// Probability density function at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std == 0.0 {
            if x == self.mean {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            std_normal_pdf((x - self.mean) / self.std) / self.std
        }
    }

    /// Quantile function (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std * phi_inv(p)
    }

    /// The sum of two *independent* Gaussians.
    pub fn add_independent(&self, other: &Normal) -> Normal {
        Normal::new(
            self.mean + other.mean,
            (self.variance() + other.variance()).sqrt(),
        )
    }

    /// Scales the random variable by a constant `k` (`Y = kX`).
    pub fn scale(&self, k: f64) -> Normal {
        Normal::new(self.mean * k, self.std * k.abs())
    }

    /// Shifts the random variable by a constant `c` (`Y = X + c`).
    pub fn shift(&self, c: f64) -> Normal {
        Normal::new(self.mean + c, self.std)
    }
}

impl Default for Normal {
    /// The standard normal `N(0, 1)`.
    fn default() -> Self {
        Normal::new(0.0, 1.0)
    }
}

impl std::fmt::Display for Normal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N({:.6}, {:.6}²)", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_quantile_inverse() {
        let d = Normal::new(3.0, 1.5);
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn degenerate_gaussian_is_step() {
        let d = Normal::new(2.0, 0.0);
        assert_eq!(d.cdf(1.999), 0.0);
        assert_eq!(d.cdf(2.0), 1.0);
        assert_eq!(d.cdf(5.0), 1.0);
    }

    #[test]
    fn add_independent_sums_moments() {
        let a = Normal::new(1.0, 3.0);
        let b = Normal::new(2.0, 4.0);
        let c = a.add_independent(&b);
        assert!((c.mean() - 3.0).abs() < 1e-12);
        assert!((c.std() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn scale_flips_sign_correctly() {
        let a = Normal::new(1.0, 2.0);
        let b = a.scale(-3.0);
        assert!((b.mean() + 3.0).abs() < 1e-12);
        assert!((b.std() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_peak_at_mean() {
        let d = Normal::new(-1.0, 0.5);
        assert!(d.pdf(-1.0) > d.pdf(-0.5));
        assert!(d.pdf(-1.0) > d.pdf(-1.5));
    }

    #[test]
    #[should_panic(expected = "std must be finite and non-negative")]
    fn negative_std_rejected() {
        let _ = Normal::new(0.0, -1.0);
    }
}
