//! Sparse vectors over a fixed-width factor space.
//!
//! [`SparseVec`] stores only the (index, value) pairs of a conceptual dense
//! `Vec<f64>`, with indices strictly ascending. It exists for one purpose:
//! canonical-form SSTA over spatial-correlation models where each gate sees
//! only O(log n) of the shared factors, so walking the full dense vector per
//! `max`/`add`/covariance is almost entirely wasted work.
//!
//! # Bit-identity contract
//!
//! Every operation here is **bit-identical** to the corresponding dense
//! left-to-right fold, provided all values are finite. The argument:
//!
//! * Missing entries are combined with a **literal `0.0` operand** using the
//!   *same expression* the dense code evaluates (e.g. `t*a + (1.0-t)*0.0`),
//!   never short-circuited to `a` — so any entry that stays materialized
//!   has exactly the dense value (up to the sign of zero).
//! * Skipped terms in dot products and norms are `±0.0` (zero times a finite
//!   value, or a square of zero). An IEEE-754 round-to-nearest accumulator
//!   that starts at `+0.0` is unchanged bitwise by adding `±0.0`: while it is
//!   `+0.0`, `+0.0 + ±0.0 = +0.0`; once nonzero, adding a signed zero is the
//!   identity. (It can never *become* `-0.0`.) Hence folding only the stored
//!   entries, in ascending index order, reproduces the dense fold bit for
//!   bit.
//! * The only representational slack is the sign of stored zeros (a dense
//!   path may hold `-0.0` where the sparse path stores nothing). `-0.0 ==
//!   0.0` under `f64` comparison and both behave identically in every
//!   product and sum above, so the difference is unobservable — which is why
//!   [`SparseVec`]'s `PartialEq` compares *semantically* (missing ≡ zero)
//!   rather than by pattern.
//!
//! Stored zeros that arise from arithmetic (e.g. `1.0 + (-1.0)` during a
//! merge) are kept, not compacted: compaction would cost a pass and buys
//! nothing, while keeping patterns stable makes the equal-pattern fast path
//! (the common case once forms converge structurally) hit far more often.

/// A sparse `f64` vector of fixed dimension with strictly ascending indices.
///
/// See the module docs for the bit-identity contract with dense folds.
#[derive(Debug, Clone, Default)]
pub struct SparseVec {
    /// Width of the conceptual dense vector.
    dim: u32,
    /// Stored indices, strictly ascending, each `< dim`.
    idx: Vec<u32>,
    /// Stored values, parallel to `idx`.
    val: Vec<f64>,
}

impl SparseVec {
    /// An all-zero vector of the given dimension (nothing stored).
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim: dim as u32,
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    /// Builds from a dense slice, dropping exact (±) zeros.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for (k, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                idx.push(k as u32);
                val.push(v);
            }
        }
        Self {
            dim: dense.len() as u32,
            idx,
            val,
        }
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim as usize];
        for (&k, &v) in self.idx.iter().zip(&self.val) {
            out[k as usize] = v;
        }
        out
    }

    /// Dimension of the conceptual dense vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Number of stored entries (may include explicit zeros from merges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// The value at index `k` (zero if not stored).
    pub fn get(&self, k: usize) -> f64 {
        match self.idx.binary_search(&(k as u32)) {
            Ok(p) => self.val[p],
            Err(_) => 0.0,
        }
    }

    /// Iterates stored `(index, value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx
            .iter()
            .zip(&self.val)
            .map(|(&k, &v)| (k as usize, v))
    }

    /// Drops all stored entries (the vector becomes all-zero); the
    /// dimension and the allocations are kept.
    pub fn clear(&mut self) {
        self.idx.clear();
        self.val.clear();
    }

    /// Copies `other` into `self`, reusing `self`'s allocations.
    pub fn assign(&mut self, other: &SparseVec) {
        self.dim = other.dim;
        self.idx.clear();
        self.idx.extend_from_slice(&other.idx);
        self.val.clear();
        self.val.extend_from_slice(&other.val);
    }

    /// Sets `self` to `scale ·` the sparse row `(idx, val)` of an external
    /// CSR matrix with row width `dim`, reusing allocations. Indices must be
    /// strictly ascending.
    pub fn assign_scaled(&mut self, dim: usize, idx: &[u32], val: &[f64], scale: f64) {
        debug_assert_eq!(idx.len(), val.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        self.dim = dim as u32;
        self.idx.clear();
        self.idx.extend_from_slice(idx);
        self.val.clear();
        self.val.extend(val.iter().map(|a| scale * a));
    }

    /// Dot product with another sparse vector of the same dimension.
    ///
    /// Bit-identical to the dense ascending fold `Σ_k a[k]·b[k]` for finite
    /// values (skipped terms are `±0.0`; see module docs).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        debug_assert_eq!(self.dim, other.dim);
        let mut acc = 0.0;
        if self.idx == other.idx {
            for (a, b) in self.val.iter().zip(&other.val) {
                acc += a * b;
            }
            return acc;
        }
        let (mut i, mut j) = (0, 0);
        while i < self.idx.len() && j < other.idx.len() {
            match self.idx[i].cmp(&other.idx[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.val[i] * other.val[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product with a dense slice of matching dimension; bit-identical
    /// to the dense ascending fold for finite values.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        debug_assert_eq!(self.dim as usize, dense.len());
        let mut acc = 0.0;
        for (&k, &v) in self.idx.iter().zip(&self.val) {
            acc += v * dense[k as usize];
        }
        acc
    }

    /// Sum of squares of the entries, folded in ascending index order;
    /// bit-identical to the dense `Σ_k v[k]²` fold.
    pub fn norm2(&self) -> f64 {
        let mut acc = 0.0;
        for &v in &self.val {
            acc += v * v;
        }
        acc
    }

    /// Element-wise in-place combine over the **union** pattern:
    /// `self[k] = f(self[k], other[k])` for every `k` stored in either
    /// vector, with a literal `0.0` passed for the missing side.
    ///
    /// `f` must satisfy `f(0.0, 0.0) ∈ {±0.0}` for the result to stay
    /// consistent with the dense computation at unstored positions (both
    /// combines used in SSTA — `a + b` and `t·a + (1−t)·b` with `t ∈ [0,1]`
    /// — do). When the two patterns are identical the merge degenerates to
    /// a dense-speed zip; otherwise a two-pass backward in-place union merge
    /// runs without scratch allocation.
    pub fn merge_assign<F: Fn(f64, f64) -> f64>(&mut self, other: &SparseVec, f: F) {
        debug_assert_eq!(self.dim, other.dim);
        if self.idx == other.idx {
            for (a, &b) in self.val.iter_mut().zip(&other.val) {
                *a = f(*a, b);
            }
            return;
        }
        if self.idx.len() == self.dim as usize {
            // `self` is structurally dense (the usual state of an arrival
            // vector a few levels into propagation), so the union is just
            // `self`'s pattern: apply `f` slot by slot against a densified
            // view of `other` — exactly the dense zip, no merge needed.
            let mut j = 0;
            for (k, a) in self.val.iter_mut().enumerate() {
                let b = if j < other.idx.len() && other.idx[j] as usize == k {
                    j += 1;
                    other.val[j - 1]
                } else {
                    0.0
                };
                *a = f(*a, b);
            }
            return;
        }
        let (la, lb) = (self.idx.len(), other.idx.len());
        // Pass 1: size of the union pattern.
        let (mut i, mut j, mut u) = (0, 0, 0);
        while i < la && j < lb {
            match self.idx[i].cmp(&other.idx[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
            u += 1;
        }
        u += (la - i) + (lb - j);
        self.idx.resize(u, 0);
        self.val.resize(u, 0.0);
        // Pass 2: merge back-to-front. The write cursor `w` never drops
        // below the read cursor `i` (remaining union slots ≥ remaining
        // `self` entries), so unread `self` entries are never clobbered.
        let (mut i, mut j, mut w) = (la, lb, u);
        while i > 0 && j > 0 {
            w -= 1;
            let a = self.idx[i - 1];
            let b = other.idx[j - 1];
            if a == b {
                i -= 1;
                j -= 1;
                self.idx[w] = a;
                self.val[w] = f(self.val[i], other.val[j]);
            } else if a > b {
                i -= 1;
                self.idx[w] = a;
                self.val[w] = f(self.val[i], 0.0);
            } else {
                j -= 1;
                self.idx[w] = b;
                self.val[w] = f(0.0, other.val[j]);
            }
        }
        while j > 0 {
            w -= 1;
            j -= 1;
            self.idx[w] = other.idx[j];
            self.val[w] = f(0.0, other.val[j]);
        }
        while i > 0 {
            w -= 1;
            i -= 1;
            self.idx[w] = self.idx[i];
            self.val[w] = f(self.val[i], 0.0);
        }
        debug_assert_eq!(w, 0);
    }
}

/// Semantic equality: two vectors are equal iff they represent the same
/// dense vector (missing ≡ zero, `-0.0 == 0.0`), regardless of which zeros
/// happen to be stored.
impl PartialEq for SparseVec {
    fn eq(&self, other: &Self) -> bool {
        if self.dim != other.dim {
            return false;
        }
        if self.idx == other.idx {
            return self.val == other.val;
        }
        let (la, lb) = (self.idx.len(), other.idx.len());
        let (mut i, mut j) = (0, 0);
        while i < la || j < lb {
            let a = if i < la { Some(self.idx[i]) } else { None };
            let b = if j < lb { Some(other.idx[j]) } else { None };
            let ok = match (a, b) {
                (Some(ka), Some(kb)) if ka == kb => {
                    i += 1;
                    j += 1;
                    self.val[i - 1] == other.val[j - 1]
                }
                (Some(ka), kb) if kb.is_none() || ka < kb.unwrap() => {
                    i += 1;
                    self.val[i - 1] == 0.0
                }
                _ => {
                    j += 1;
                    other.val[j - 1] == 0.0
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(pairs: &[(usize, f64)], dim: usize) -> Vec<f64> {
        let mut d = vec![0.0; dim];
        for &(k, v) in pairs {
            d[k] = v;
        }
        d
    }

    #[test]
    fn from_dense_round_trips_and_drops_zeros() {
        let d = [0.0, 1.5, -0.0, 2.0, 0.0];
        let s = SparseVec::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), vec![0.0, 1.5, 0.0, 2.0, 0.0]);
        assert_eq!(s.get(1), 1.5);
        assert_eq!(s.get(2), 0.0);
    }

    #[test]
    fn dot_matches_dense_fold_bitwise() {
        let a = dense_of(&[(0, 0.3), (4, -1.25), (7, 2.0)], 9);
        let b = dense_of(&[(1, 5.0), (4, 0.5), (8, 3.0)], 9);
        let (sa, sb) = (SparseVec::from_dense(&a), SparseVec::from_dense(&b));
        let dense: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(sa.dot(&sb), dense);
        assert_eq!(sa.dot_dense(&b), dense);
    }

    #[test]
    fn norm2_matches_dense_fold_bitwise() {
        let a = dense_of(&[(2, 0.1), (3, 0.7), (11, -0.01)], 13);
        let s = SparseVec::from_dense(&a);
        let dense: f64 = a.iter().map(|x| x * x).sum();
        assert_eq!(s.norm2(), dense);
    }

    #[test]
    fn merge_assign_union_add_matches_dense() {
        let a = dense_of(&[(0, 1.0), (3, 2.0), (5, -1.0)], 8);
        let b = dense_of(&[(1, 4.0), (3, -2.0), (7, 0.5)], 8);
        let mut s = SparseVec::from_dense(&a);
        s.merge_assign(&SparseVec::from_dense(&b), |x, y| x + y);
        let dense: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s.to_dense(), dense);
        // The cancelled entry at 3 stays stored as an explicit zero.
        assert_eq!(s.nnz(), 5);
    }

    #[test]
    fn merge_assign_equal_pattern_fast_path() {
        let a = dense_of(&[(2, 1.0), (6, 3.0)], 7);
        let b = dense_of(&[(2, 0.5), (6, -3.0)], 7);
        let mut s = SparseVec::from_dense(&a);
        s.merge_assign(&SparseVec::from_dense(&b), |x, y| 0.25 * x + 0.75 * y);
        let dense: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 0.25 * x + 0.75 * y).collect();
        assert_eq!(s.to_dense(), dense);
    }

    #[test]
    fn merge_assign_dense_self_fast_path() {
        // A structurally full `self` (all slots stored, idx = 0..dim) takes
        // the dense-self path; results must match the dense zip bitwise for
        // both an additive and a blending combine.
        let a: Vec<f64> = (0..6).map(|k| 0.3 * k as f64 - 0.7).collect();
        let b = dense_of(&[(1, 4.0), (3, -2.0), (5, 0.5)], 6);
        let mut s = SparseVec::from_dense(&a);
        assert_eq!(s.nnz(), 6);
        s.merge_assign(&SparseVec::from_dense(&b), |x, y| x + y);
        let dense: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(s.to_dense(), dense);

        let mut s = SparseVec::from_dense(&a);
        s.merge_assign(&SparseVec::from_dense(&b), |x, y| 0.4 * x + 0.6 * y);
        let dense: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 0.4 * x + 0.6 * y).collect();
        assert_eq!(s.to_dense(), dense);

        // Empty `other` still hits every stored slot with b = 0.0.
        let mut s = SparseVec::from_dense(&a);
        s.merge_assign(&SparseVec::zeros(6), |x, y| x + y);
        assert_eq!(s.to_dense(), a);
    }

    #[test]
    fn merge_assign_disjoint_and_prefix_suffix_shapes() {
        // Covers the drain loops on both sides of the backward merge.
        for (pa, pb) in [
            (vec![(0, 1.0), (1, 2.0)], vec![(5, 3.0), (6, 4.0)]),
            (vec![(5, 1.0)], vec![(0, 2.0), (1, 3.0)]),
            (vec![], vec![(2, 9.0)]),
            (vec![(2, 9.0)], vec![]),
        ] {
            let a = dense_of(&pa, 8);
            let b = dense_of(&pb, 8);
            let mut s = SparseVec::from_dense(&a);
            s.merge_assign(&SparseVec::from_dense(&b), |x, y| x + y);
            let dense: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            assert_eq!(s.to_dense(), dense);
        }
    }

    #[test]
    fn semantic_equality_ignores_stored_zeros() {
        let mut a = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
        let b = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
        // Force a stored zero into `a` at index 1 via a cancelling merge.
        a.merge_assign(&SparseVec::from_dense(&[0.0, 1.0, 0.0]), |x, y| x + y);
        a.merge_assign(&SparseVec::from_dense(&[0.0, -1.0, 0.0]), |x, y| x + y);
        assert_eq!(a.nnz(), 3);
        assert_eq!(b.nnz(), 2);
        assert_eq!(a, b);
        assert_ne!(a, SparseVec::from_dense(&[1.0, 0.5, 2.0]));
        assert_ne!(a, SparseVec::from_dense(&[1.0, 0.0, 2.0, 0.0]));
    }

    #[test]
    fn assign_scaled_matches_dense_construction() {
        let idx = [1u32, 4, 6];
        let val = [0.5, -2.0, 1.5];
        let mut s = SparseVec::zeros(0);
        s.assign_scaled(8, &idx, &val, -3.0);
        let mut dense = vec![0.0; 8];
        for (&k, &v) in idx.iter().zip(&val) {
            dense[k as usize] = -3.0 * v;
        }
        assert_eq!(s.to_dense(), dense);
        assert_eq!(s.dim(), 8);
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut s = SparseVec::from_dense(&[1.0, 2.0]);
        s.clear();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s, SparseVec::zeros(2));
    }
}
