//! Numerics and statistics substrate for the `statleak` workspace.
//!
//! This crate provides the mathematical building blocks that every other
//! crate in the reproduction relies on:
//!
//! * [`phi`], [`phi_inv`], [`erf`] — the standard-normal machinery used for
//!   timing yield and leakage percentiles;
//! * [`Normal`] and [`LogNormal`] — the two distribution families at the
//!   heart of statistical leakage optimization (gate delay is modeled as
//!   Gaussian to first order, gate leakage as lognormal);
//! * [`clark_max`] — Clark's classic approximation for the moments of the
//!   maximum of two correlated Gaussians, the kernel of block-based SSTA;
//! * [`wilkinson_sum`] — Fenton–Wilkinson moment matching for sums of
//!   correlated lognormals, the kernel of full-chip statistical leakage
//!   analysis;
//! * [`Matrix`] and [`cholesky`] — the small dense linear algebra needed to
//!   factor spatial-correlation matrices into independent factors;
//! * [`Summary`], [`Histogram`] — descriptive statistics for the
//!   Monte-Carlo engine.
//!
//! # Example
//!
//! ```
//! use statleak_stats::{Normal, LogNormal};
//!
//! // Delay of a path: N(100ps, 5ps). Yield at a 110ps clock:
//! let d = Normal::new(100.0, 5.0);
//! let yield_ = d.cdf(110.0);
//! assert!(yield_ > 0.97 && yield_ < 0.98);
//!
//! // Leakage of a gate: lognormal with ln-space moments.
//! let leak = LogNormal::new(0.0, 0.5);
//! assert!(leak.mean() > 1.0); // e^{sigma^2/2}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial;
mod bivariate;
mod clark;
mod descriptive;
mod erf;
mod linalg;
mod lognormal;
mod normal;
mod rng;
mod sobol;
mod sparse;
mod wilkinson;

pub use binomial::{wilson_interval, BinomialInterval};
pub use bivariate::bivariate_normal_cdf;
pub use clark::{clark_max, clark_max_many, ClarkMoments};
pub use descriptive::{percentile_of_sorted, Histogram, Summary};
pub use erf::{erf, erfc, phi, phi_inv, std_normal_pdf};
pub use linalg::{cholesky, CholeskyError, Matrix};
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use rng::{sample_standard_normal, seeded_rng, StdNormalSampler};
pub use sobol::SobolSequence;
pub use sparse::SparseVec;
pub use wilkinson::{wilkinson_sum, LognormalTerm};
