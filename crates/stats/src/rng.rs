//! Seeded random-number helpers shared by the Monte-Carlo engine and tests.
//!
//! `rand` 0.8 does not ship a Gaussian sampler in the core crate (that lives
//! in `rand_distr`, which is outside the approved dependency set), so we
//! provide a small Box–Muller implementation here. Determinism matters: all
//! experiments seed [`seeded_rng`] so tables and figures are reproducible
//! run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = statleak_stats::seeded_rng(1);
/// let mut b = statleak_stats::seeded_rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// For bulk sampling prefer [`StdNormalSampler`], which uses both Box–Muller
/// outputs instead of discarding one.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A standard-normal sampler that caches the second Box–Muller output,
/// halving the number of transcendental calls in tight Monte-Carlo loops.
///
/// ```
/// use rand::SeedableRng;
/// use statleak_stats::StdNormalSampler;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut s = StdNormalSampler::new();
/// let x = s.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StdNormalSampler {
    cached: Option<f64>,
}

impl StdNormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fills a slice with standard-normal samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for v in out {
            *v = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..10 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = seeded_rng(5);
        let mut sampler = StdNormalSampler::new();
        let samples: Vec<f64> = (0..100_000).map(|_| sampler.sample(&mut rng)).collect();
        let s = Summary::from_samples(&samples);
        assert!(s.mean.abs() < 0.02, "mean {}", s.mean);
        assert!((s.std - 1.0).abs() < 0.02, "std {}", s.std);
        // Symmetric tails.
        assert!((s.p95 - 1.645).abs() < 0.05, "p95 {}", s.p95);
    }

    #[test]
    fn fill_fills_everything() {
        let mut rng = seeded_rng(1);
        let mut sampler = StdNormalSampler::new();
        let mut buf = [f64::NAN; 17];
        sampler.fill(&mut rng, &mut buf);
        assert!(buf.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn single_shot_sampler_finite() {
        let mut rng = seeded_rng(2);
        for _ in 0..1000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
