//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use statleak_stats::{
    cholesky, clark_max, percentile_of_sorted, phi, phi_inv, wilkinson_sum, Histogram, LogNormal,
    LognormalTerm, Matrix, Normal, Summary,
};

proptest! {
    #[test]
    fn phi_in_unit_interval(x in -50.0..50.0f64) {
        let p = phi(x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn phi_monotone(a in -8.0..8.0f64, d in 0.001..4.0f64) {
        prop_assert!(phi(a + d) >= phi(a));
    }

    #[test]
    fn phi_inv_round_trip(p in 0.0001..0.9999f64) {
        let x = phi_inv(p);
        prop_assert!((phi(x) - p).abs() < 1e-7, "p={p} x={x}");
    }

    #[test]
    fn normal_cdf_quantile_inverse(
        mean in -100.0..100.0f64,
        std in 0.01..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let n = Normal::new(mean, std);
        prop_assert!((n.cdf(n.quantile(p)) - p).abs() < 1e-6);
    }

    #[test]
    fn normal_add_independent_moments(
        m1 in -10.0..10.0f64, s1 in 0.0..5.0f64,
        m2 in -10.0..10.0f64, s2 in 0.0..5.0f64,
    ) {
        let c = Normal::new(m1, s1).add_independent(&Normal::new(m2, s2));
        prop_assert!((c.mean() - (m1 + m2)).abs() < 1e-9);
        prop_assert!((c.variance() - (s1 * s1 + s2 * s2)).abs() < 1e-9);
    }

    #[test]
    fn lognormal_moment_round_trip(mu in -5.0..5.0f64, sigma in 0.0..2.0f64) {
        let x = LogNormal::new(mu, sigma);
        let y = LogNormal::from_moments(x.mean(), x.variance());
        prop_assert!((x.mu() - y.mu()).abs() < 1e-7);
        prop_assert!((x.sigma() - y.sigma()).abs() < 1e-7);
    }

    #[test]
    fn lognormal_quantiles_ordered(mu in -5.0..5.0f64, sigma in 0.001..2.0f64) {
        let x = LogNormal::new(mu, sigma);
        prop_assert!(x.quantile(0.05) < x.median());
        prop_assert!(x.median() < x.quantile(0.95));
    }

    #[test]
    fn clark_max_invariants(
        ma in -10.0..10.0f64, va in 0.0..9.0f64,
        mb in -10.0..10.0f64, vb in 0.0..9.0f64,
        rho in -0.99..0.99f64,
    ) {
        let cov = rho * (va * vb).sqrt();
        let r = clark_max(ma, va, mb, vb, cov);
        prop_assert!(r.mean >= ma.max(mb) - 1e-9, "E[max] >= max of means");
        prop_assert!(r.variance >= -1e-12);
        prop_assert!((0.0..=1.0).contains(&r.tightness));
    }

    #[test]
    fn wilkinson_mean_is_exact(
        mus in prop::collection::vec(-3.0..1.0f64, 1..8),
        shared in 0.0..0.6f64,
        local in 0.0..0.6f64,
    ) {
        let terms: Vec<LognormalTerm> = mus
            .iter()
            .map(|&mu| LognormalTerm {
                mu,
                factor_coeffs: vec![shared],
                local_coeff: local,
            })
            .collect();
        let sum = wilkinson_sum(&terms);
        let exact: f64 = terms.iter().map(LognormalTerm::mean).sum();
        prop_assert!((sum.mean() - exact).abs() / exact < 1e-9);
    }

    #[test]
    fn wilkinson_correlation_inflates_variance(
        mus in prop::collection::vec(-2.0..1.0f64, 2..6),
        sigma in 0.05..0.5f64,
    ) {
        let corr: Vec<LognormalTerm> = mus
            .iter()
            .map(|&mu| LognormalTerm { mu, factor_coeffs: vec![sigma], local_coeff: 0.0 })
            .collect();
        let ind: Vec<LognormalTerm> = mus
            .iter()
            .map(|&mu| LognormalTerm { mu, factor_coeffs: vec![], local_coeff: sigma })
            .collect();
        let vc = wilkinson_sum(&corr).variance();
        let vi = wilkinson_sum(&ind).variance();
        prop_assert!(vc >= vi - 1e-12 * vc.abs());
    }

    #[test]
    fn cholesky_reconstructs_random_spd(
        entries in prop::collection::vec(-1.0..1.0f64, 9),
    ) {
        // A = B·Bᵀ + I is symmetric positive definite.
        let b = Matrix::from_rows(3, entries);
        let mut a = b.mul_transpose();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let l = cholesky(&a).expect("SPD");
        prop_assert!(l.mul_transpose().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn percentile_bounded_by_extremes(
        mut xs in prop::collection::vec(-100.0..100.0f64, 1..50),
        p in 0.0..=1.0f64,
    ) {
        xs.sort_by(f64::total_cmp);
        let v = percentile_of_sorted(&xs, p);
        prop_assert!(v >= xs[0] - 1e-12 && v <= xs[xs.len() - 1] + 1e-12);
    }

    #[test]
    fn summary_consistent(xs in prop::collection::vec(-100.0..100.0f64, 2..60)) {
        let s = Summary::from_samples(&xs);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.mean >= s.min && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.p95 <= s.p99 + 1e-12);
    }

    #[test]
    fn histogram_conserves_count(xs in prop::collection::vec(-10.0..10.0f64, 1..100)) {
        let h = Histogram::from_samples(&xs, 7);
        prop_assert_eq!(h.total() as usize, xs.len());
        prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, xs.len());
    }
}
